"""Heavy-hitter change detection over sliding windows.

The paper's conclusion names this as the open problem: "a mechanism that
would allow constant-time updates for detection of changes in the
hierarchical heavy hitters set would be a promising direction for future
work."  This module provides a practical take on that direction:

:class:`HeavyChangeDetector` polls a window algorithm's heavy set at a
fixed cadence (amortizing the expensive output computation, which neither
RHHH nor H-Memento can serve per-packet) and emits *change events* —
arrivals and departures — with hysteresis so flows hovering at the
threshold do not flap.

Hysteresis follows the classic two-threshold scheme: a key **enters** when
its estimate exceeds ``theta``, and **leaves** only when it falls below
``theta * exit_ratio`` (default 0.8), mirroring how operators configure
alerting on top of HHH systems (Section 1's motivation: reacting quickly
to changes in the heavy-hitter set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Set

__all__ = ["ChangeEvent", "HeavyChangeDetector"]


@dataclass(frozen=True)
class ChangeEvent:
    """One membership change in the heavy set."""

    kind: str  # "enter" or "leave"
    key: Hashable
    at: int  # packet index of the poll that observed the change
    estimate: float


class HeavyChangeDetector:
    """Detect arrivals/departures in a window algorithm's heavy set.

    Parameters
    ----------
    algorithm:
        Any object with ``update(packet)``; the heavy set is read through
        ``snapshot`` (below).
    theta:
        Entry threshold as a fraction of the window.
    window:
        The window size (for converting ``theta`` to a count bar).
    snapshot:
        Callable returning ``{key: estimate}`` for current heavy
        candidates.  Defaults to ``algorithm.heavy_hitters(theta)`` /
        ``algorithm.heavy_prefixes(theta)`` (with a lowered theta so
        hysteresis has data below the entry bar).
    poll_every:
        Packets between polls; the amortized per-packet cost of change
        detection is ``O(poll cost / poll_every)``.
    exit_ratio:
        Hysteresis: keys leave only below ``theta * exit_ratio``.

    Examples
    --------
    >>> from repro import Memento
    >>> sketch = Memento(window=1000, counters=64, tau=1.0)
    >>> detector = HeavyChangeDetector(sketch, theta=0.3, window=1000,
    ...                                poll_every=100)
    >>> events = []
    >>> for i in range(1500):
    ...     events += detector.update("hot" if i > 400 else i)
    >>> any(e.kind == "enter" and e.key == "hot" for e in events)
    True
    """

    def __init__(
        self,
        algorithm,
        theta: float,
        window: int,
        snapshot: Optional[Callable[[], Dict[Hashable, float]]] = None,
        poll_every: int = 1000,
        exit_ratio: float = 0.8,
    ) -> None:
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if poll_every <= 0:
            raise ValueError(f"poll_every must be positive, got {poll_every}")
        if not 0.0 < exit_ratio <= 1.0:
            raise ValueError(f"exit_ratio must be in (0, 1], got {exit_ratio}")
        self.algorithm = algorithm
        self.theta = float(theta)
        self.window = int(window)
        self.poll_every = int(poll_every)
        self.exit_ratio = float(exit_ratio)
        self._snapshot = snapshot or self._default_snapshot
        self._heavy: Set[Hashable] = set()
        self._packets = 0
        self.events: List[ChangeEvent] = []

    def _default_snapshot(self) -> Dict[Hashable, float]:
        # query at the *exit* threshold so hysteresis sees keys that have
        # dipped below the entry bar but not yet departed
        low_theta = self.theta * self.exit_ratio
        if hasattr(self.algorithm, "heavy_prefixes"):
            return self.algorithm.heavy_prefixes(low_theta)
        return self.algorithm.heavy_hitters(low_theta)

    # ------------------------------------------------------------------
    def update(self, packet) -> List[ChangeEvent]:
        """Feed one packet; returns the change events of this step (if a
        poll fired), empty otherwise."""
        self.algorithm.update(packet)
        self._packets += 1
        if self._packets % self.poll_every:
            return []
        return self.poll()

    def poll(self) -> List[ChangeEvent]:
        """Force a poll now; returns (and records) the change events."""
        estimates = self._snapshot()
        enter_bar = self.theta * self.window
        exit_bar = enter_bar * self.exit_ratio
        fresh: List[ChangeEvent] = []

        for key, est in estimates.items():
            if key not in self._heavy and est > enter_bar:
                self._heavy.add(key)
                fresh.append(ChangeEvent("enter", key, self._packets, est))
        for key in list(self._heavy):
            est = estimates.get(key, 0.0)
            if est < exit_bar:
                self._heavy.discard(key)
                fresh.append(ChangeEvent("leave", key, self._packets, est))

        self.events.extend(fresh)
        return fresh

    @property
    def heavy_set(self) -> Set[Hashable]:
        """The current (hysteresis-stabilized) heavy set."""
        return set(self._heavy)

    @property
    def packets(self) -> int:
        """Packets processed through the detector."""
        return self._packets
