"""Detection-time model for new heavy hitters (Figure 1b).

Section 3 of the paper motivates sliding windows with a scenario: a new
flow appears mid-measurement and thereafter consumes a constant fraction
``rho = ratio * theta`` of the traffic (``ratio >= 1`` — the x-axis of
Figure 1b is ``ratio = rho / theta``).  Each method detects the flow when
its estimate of the flow's frequency first reaches ``theta * W``:

* **Window** — the sliding window detects at the optimal moment, after
  ``W / ratio`` packets: expected detection time ``1/ratio`` windows.
* **Improved Interval** — detects at ``W / ratio`` into some interval; if
  the flow appears too late in the current interval the detection slips to
  the next one.  Expected time ``1/ratio + 1/(2 ratio²)`` windows.
* **Interval** — detects only at interval *ends*: expected time
  ``1/2 + 1/ratio`` windows.

Both closed forms (derived by integrating over a uniform appearance offset)
and a Monte-Carlo simulator over exact counters are provided; the tests
check that they agree, and the Figure 1b bench prints both.

At ``ratio = 2`` these give 0.5 (window), 0.625 (improved) and 1.0
(interval) — matching the paper's "half a window whereas interval-based
algorithms require between 0.6-1.0 windows".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.exact import ExactIntervalCounter, ExactWindowCounter

__all__ = [
    "analytic_detection_time",
    "simulate_detection_time",
    "DetectionResult",
    "detection_curve",
]

METHODS = ("window", "improved_interval", "interval")


def analytic_detection_time(ratio: float, method: str) -> float:
    """Expected detection time in *windows* for a flow at ``ratio × theta``.

    >>> analytic_detection_time(2.0, "window")
    0.5
    >>> analytic_detection_time(2.0, "interval")
    1.0
    """
    if ratio < 1.0:
        raise ValueError(
            f"ratio must be >= 1 (below the threshold the flow is never a "
            f"heavy hitter), got {ratio}"
        )
    if method == "window":
        return 1.0 / ratio
    if method == "improved_interval":
        return 1.0 / ratio + 0.5 / (ratio * ratio)
    if method == "interval":
        return 0.5 + 1.0 / ratio
    raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one Monte-Carlo detection experiment."""

    method: str
    ratio: float
    mean_windows: float
    std_windows: float
    runs: int


def _detect_once(
    rng: np.random.Generator,
    window: int,
    theta: float,
    ratio: float,
    method: str,
    background_flows: int,
    deterministic: bool,
) -> int:
    """One trial: packets until detection, counted from the flow's arrival.

    The new flow appears at a uniform offset within an interval and then
    consumes a ``ratio * theta`` share of the traffic.  By default the share
    is paced deterministically (the paper's "consumes, at a constant rate");
    ``deterministic=False`` switches to i.i.d. Bernoulli packet ownership,
    which adds hitting-time noise (and diverges for plain intervals at
    ``ratio -> 1``, where a whole interval only *borderline* reaches the
    threshold).  Detection uses exact counters, per the paper's "for
    simplicity, we consider accurate measurements".
    """
    rho = ratio * theta
    if rho > 1.0:
        raise ValueError(f"ratio * theta must be <= 1, got {rho}")
    bar = theta * window
    offset = int(rng.integers(0, window))
    new_flow = -1  # background flows are non-negative
    acc = 0.0  # fractional-rate accumulator for deterministic pacing

    def next_is_new() -> bool:
        nonlocal acc
        if not deterministic:
            return bool(rng.random() < rho)
        acc += rho
        if acc >= 1.0:
            acc -= 1.0
            return True
        return False

    def background() -> int:
        return int(rng.integers(0, background_flows))

    def background_block(count: int) -> list:
        # one vectorized draw; consumes the RNG exactly like ``count``
        # scalar ``integers`` calls, so trials are seed-for-seed identical
        return rng.integers(0, background_flows, size=count).tolist()

    if method == "window":
        counter = ExactWindowCounter(window)
        # warm up so the window is full of background when the flow appears
        counter.update_many(background_block(window + offset))
        t = 0
        while True:
            t += 1
            counter.update(new_flow if next_is_new() else background())
            if counter.query(new_flow) >= bar:
                return t

    counter = ExactIntervalCounter(window)
    counter.update_many(background_block(offset))
    t = 0
    while True:
        t += 1
        counter.update(new_flow if next_is_new() else background())
        if method == "improved_interval":
            if counter.query(new_flow) >= bar:
                return t
        else:  # plain interval: estimates exist only at interval ends
            if counter.position == 0 and counter.query_last(new_flow) >= bar:
                return t


def simulate_detection_time(
    ratio: float,
    method: str,
    window: int = 2000,
    theta: float = 0.01,
    runs: int = 30,
    background_flows: int = 100,
    seed: Optional[int] = None,
    deterministic: bool = True,
) -> DetectionResult:
    """Monte-Carlo estimate of the expected detection time (in windows)."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    rng = np.random.default_rng(seed)
    times = [
        _detect_once(
            rng, window, theta, ratio, method, background_flows, deterministic
        )
        / window
        for _ in range(runs)
    ]
    arr = np.asarray(times)
    return DetectionResult(
        method=method,
        ratio=ratio,
        mean_windows=float(arr.mean()),
        std_windows=float(arr.std(ddof=1)) if runs > 1 else 0.0,
        runs=runs,
    )


def detection_curve(
    ratios: Iterable[float],
    methods: Iterable[str] = METHODS,
    simulate: bool = False,
    **sim_kwargs,
) -> List[Dict[str, float]]:
    """Figure 1b data: one row per ratio with a column per method.

    With ``simulate=True`` each cell also gets a ``<method>_sim`` Monte-
    Carlo companion (slower; used by the bench's verification mode).
    """
    rows: List[Dict[str, float]] = []
    for ratio in ratios:
        row: Dict[str, float] = {"ratio": float(ratio)}
        for method in methods:
            row[method] = analytic_detection_time(ratio, method)
            if simulate:
                row[f"{method}_sim"] = simulate_detection_time(
                    ratio, method, **sim_kwargs
                ).mean_windows
        rows.append(row)
    return rows
