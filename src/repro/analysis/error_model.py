"""Analytical accuracy model — Theorems 5.2 and 5.3 and their inverses.

The paper's guarantees tie four quantities together: the window size ``W``,
the sampling probability ``tau``, the sampling error ``eps_s``, and the
confidence ``delta`` (via the standard-normal quantile ``Z``):

* Theorem 5.2 (Memento):     ``tau >= Z_{1-δ/4} / (W · eps_s²)``
* Theorem 5.3 (H-Memento):   ``tau >= Z_{1-δ/2} · H / (W · eps_s²)``

This module provides the quantile, the minimal-``tau`` forms, and the
inverse forms (the ``eps_s`` achieved by a given ``tau``) used by the
network-wide error model (Theorem 5.5, in :mod:`repro.netwide.budget`) and
by the statistical tests that check the guarantees empirically.
"""

from __future__ import annotations

import math

from scipy.stats import norm

__all__ = [
    "z_quantile",
    "memento_min_tau",
    "memento_sampling_error",
    "hmemento_min_tau",
    "hmemento_sampling_error",
    "total_epsilon",
]


def z_quantile(prob: float) -> float:
    """Inverse CDF of the standard normal distribution (the paper's ``Z``).

    The paper notes ``Z_{1-δ/4} < 4`` for every ``δ > 1e-6``; tests pin
    that remark.

    >>> round(z_quantile(0.975), 2)
    1.96
    """
    if not 0.0 < prob < 1.0:
        raise ValueError(f"prob must be in (0, 1), got {prob}")
    return float(norm.ppf(prob))


def memento_min_tau(window: int, eps_s: float, delta: float) -> float:
    """Theorem 5.2: smallest ``tau`` meeting (eps_s, delta) for Memento.

    The result is capped at 1.0 — tiny windows may simply require full
    updates for every packet.
    """
    _check(window, eps_s, delta)
    tau = z_quantile(1.0 - delta / 4.0) / (window * eps_s * eps_s)
    return min(1.0, tau)


def memento_sampling_error(window: int, tau: float, delta: float) -> float:
    """Inverse of Theorem 5.2: the ``eps_s`` guaranteed by a given ``tau``."""
    if not 0.0 < tau <= 1.0:
        raise ValueError(f"tau must be in (0, 1], got {tau}")
    return math.sqrt(z_quantile(1.0 - delta / 4.0) / (window * tau))


def hmemento_min_tau(
    window: int, eps_s: float, delta: float, hierarchy_size: int
) -> float:
    """Theorem 5.3: smallest ``tau`` for H-Memento over ``H`` patterns."""
    _check(window, eps_s, delta)
    if hierarchy_size <= 0:
        raise ValueError(f"hierarchy_size must be positive, got {hierarchy_size}")
    tau = (
        z_quantile(1.0 - delta / 2.0)
        * hierarchy_size
        / (window * eps_s * eps_s)
    )
    return min(1.0, tau)


def hmemento_sampling_error(
    window: int, tau: float, delta: float, hierarchy_size: int
) -> float:
    """Inverse of Theorem 5.3: ``eps_s`` achieved by ``tau`` with ``H`` patterns.

    This is the ``eps_s = sqrt(H · Z / (W · tau))`` step inside the proof of
    Theorem 5.5.
    """
    if not 0.0 < tau <= 1.0:
        raise ValueError(f"tau must be in (0, 1], got {tau}")
    return math.sqrt(
        hierarchy_size * z_quantile(1.0 - delta / 2.0) / (window * tau)
    )


def total_epsilon(eps_algorithm: float, eps_sampling: float) -> float:
    """Overall error ``eps = eps_a + eps_s`` (Theorems 5.2/5.3)."""
    return eps_algorithm + eps_sampling


def _check(window: int, eps_s: float, delta: float) -> None:
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if not 0.0 < eps_s < 1.0:
        raise ValueError(f"eps_s must be in (0, 1), got {eps_s}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
