"""Evaluation machinery: metrics, detection model, analytical bounds."""

from .change_detection import ChangeEvent, HeavyChangeDetector
from .detection import (
    DetectionResult,
    analytic_detection_time,
    detection_curve,
    simulate_detection_time,
)
from .error_model import (
    hmemento_min_tau,
    hmemento_sampling_error,
    memento_min_tau,
    memento_sampling_error,
    total_epsilon,
    z_quantile,
)
from .metrics import (
    RunningRMSE,
    SetQuality,
    hhh_on_arrival_rmse,
    on_arrival_rmse,
    precision_recall,
    throughput,
)

__all__ = [
    "ChangeEvent",
    "HeavyChangeDetector",
    "DetectionResult",
    "analytic_detection_time",
    "detection_curve",
    "simulate_detection_time",
    "z_quantile",
    "memento_min_tau",
    "memento_sampling_error",
    "hmemento_min_tau",
    "hmemento_sampling_error",
    "total_epsilon",
    "RunningRMSE",
    "SetQuality",
    "on_arrival_rmse",
    "hhh_on_arrival_rmse",
    "precision_recall",
    "throughput",
]
