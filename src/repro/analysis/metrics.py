"""Evaluation metrics — the paper's On-Arrival RMSE and set-quality scores.

The paper evaluates empirical error in the *On Arrival* model (Section 6):
for each arriving packet the algorithm estimates the packet's own flow
size, and the Root Mean Square Error is taken over all arrivals::

    RMSE(Alg) = sqrt( (1/N) * sum_t (f̂(s_t) - f(s_t))² )

This module implements that measurement against exact sliding-window ground
truth, its HHH generalization (per prefix level — Figure 8's x-axis), plus
precision/recall against exact heavy-hitter sets and a throughput helper
used by the speed figures.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Sequence

from ..core.exact import ExactWindowCounter
from ..hierarchy.domain import Hierarchy

__all__ = [
    "RunningRMSE",
    "on_arrival_rmse",
    "hhh_on_arrival_rmse",
    "precision_recall",
    "throughput",
    "SetQuality",
]


class RunningRMSE:
    """Streaming accumulator for the root mean square error."""

    __slots__ = ("_sum_sq", "_count")

    def __init__(self) -> None:
        self._sum_sq = 0.0
        self._count = 0

    def add(self, true_value: float, estimate: float) -> None:
        """Record one (truth, estimate) observation."""
        diff = estimate - true_value
        self._sum_sq += diff * diff
        self._count += 1

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def rmse(self) -> float:
        """The RMSE so far (0.0 before any observation)."""
        if self._count == 0:
            return 0.0
        return math.sqrt(self._sum_sq / self._count)

    @property
    def mse(self) -> float:
        """The mean squared error so far."""
        if self._count == 0:
            return 0.0
        return self._sum_sq / self._count


def on_arrival_rmse(
    algorithm,
    stream: Iterable[Hashable],
    window: int,
    stride: int = 1,
    warmup: int = 0,
    estimator: str = "query_point",
) -> float:
    """On-arrival RMSE of ``algorithm`` against an exact window counter.

    ``algorithm`` must expose ``update(x)`` and the chosen ``estimator``
    method (default ``query_point`` — the bias-removed midpoint, falling
    back to ``query`` when absent).  The exact counter replays the same
    stream with window size ``window``.  The paper queries on every packet;
    ``stride > 1`` subsamples query points (the update path still sees
    every packet), and ``warmup`` skips the first packets from the error
    average (e.g. one full window).
    """
    truth = ExactWindowCounter(window)
    acc = RunningRMSE()
    estimate = getattr(algorithm, estimator, None) or algorithm.query
    for t, item in enumerate(stream):
        algorithm.update(item)
        truth.update(item)
        if t >= warmup and t % stride == 0:
            acc.add(truth.query(item), estimate(item))
    return acc.rmse


def hhh_on_arrival_rmse(
    algorithm,
    stream: Iterable,
    hierarchy: Hierarchy,
    window: int,
    stride: int = 1,
    warmup: int = 0,
    estimator: str = "query_point",
) -> Dict[int, float]:
    """Per-pattern on-arrival RMSE for an HHH algorithm (Figure 8).

    For each query point the packet's ``H`` generalizations are estimated
    and compared against exact per-pattern window counters.  Returns
    ``{pattern_index: rmse}``; for the 1-D hierarchy pattern index equals
    prefix depth (0 = fully specified ... 4 = ``*``), which is Figure 8's
    x-axis.
    """
    truths = [
        ExactWindowCounter(window) for _ in range(hierarchy.num_patterns)
    ]
    accs = [RunningRMSE() for _ in range(hierarchy.num_patterns)]
    estimate = getattr(algorithm, estimator, None) or algorithm.query
    for t, packet in enumerate(stream):
        algorithm.update(packet)
        prefixes = hierarchy.all_prefixes(packet)
        for idx, prefix in enumerate(prefixes):
            truths[idx].update(prefix)
        if t >= warmup and t % stride == 0:
            for idx, prefix in enumerate(prefixes):
                accs[idx].add(truths[idx].query(prefix), estimate(prefix))
    return {idx: acc.rmse for idx, acc in enumerate(accs)}


@dataclass(frozen=True)
class SetQuality:
    """Precision/recall of an estimated heavy-hitter set."""

    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0.0 when undefined)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return (
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        )


def precision_recall(estimated: Iterable, truth: Iterable) -> SetQuality:
    """Compare an estimated set against the ground-truth set."""
    est = set(estimated)
    ref = set(truth)
    tp = len(est & ref)
    fp = len(est - ref)
    fn = len(ref - est)
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return SetQuality(
        precision=precision,
        recall=recall,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def throughput(
    update: Callable[[Hashable], None],
    stream: Sequence,
    repeat: int = 1,
) -> float:
    """Measured update throughput in packets per second.

    Runs ``update`` over ``stream`` ``repeat`` times under a monotonic
    clock.  This is the measurement behind the speed panels of Figures 5-7;
    per DESIGN.md the reproduction reports *relative* throughput between
    algorithms, not absolute line rates.
    """
    if not stream:
        raise ValueError("stream must be non-empty")
    start = time.perf_counter()
    for _ in range(repeat):
        for item in stream:
            update(item)
    elapsed = time.perf_counter() - start
    total = repeat * len(stream)
    return total / elapsed if elapsed > 0 else float("inf")
