"""Zero-copy shared-memory plan transport for resident shard workers.

The persistent executor's original transport pickles each per-shard plan
(positions + owned items) into its worker pipe.  For columnar feeds the
payload *is* a couple of numpy columns, so serializing them per batch is
pure overhead on the ingestion critical path.  This module replaces the
payload channel with one :class:`PlanRing` per worker:

* the **parent** writes the plan columns into the next free slot of a
  per-worker ring inside one ``multiprocessing.shared_memory`` segment
  and pipes only a tiny descriptor — slot index plus a
  ``(dtype, length)`` layout per column;
* the **worker** maps the same segment once at startup and reconstructs
  each column as a zero-copy ``np.ndarray`` view over the slot, valid
  for the duration of that one apply;
* slot reclamation is a single monotonically increasing **retired
  counter** the worker stores into the segment's control header after
  every apply (even a poisoned one).  The parent never blocks on an ack
  message: a slot is free again once ``issued - retired < slots``, and
  ``write`` only waits when every slot is still in flight
  (backpressure-when-full).

Payloads that don't fit a slot — or tasks with no vectorizable column at
all — fall back to the classic pickle-over-pipe message for that task,
so the ring never limits what the executor can carry.

:func:`split_task` / :func:`rebuild_task` translate between executor
task tuples and ring columns: 1-D numeric/fixed-width-string arrays ride
as columns, ``list`` payloads of ints/strs/bytes are encoded through
:func:`repro.core.kernel.encode_items_column` and decoded back to the
identical lists on the worker (so both transports deliver *equal* task
arguments), and anything else stays an inline (pickled) object.

Lifecycle: the creating side owns the segment and ``unlink``\\ s it on
``close()``; attaching sides only unmap.  Worker processes are always
children of the creator, so they share its resource-tracker process and
their attach-time re-registration dedups into the parent's entry — no
tracker bookkeeping is needed on the worker side, and the tracker stays
the crash safety net that unlinks segments if the parent dies without
closing.  :func:`leaked_segments` is the test-suite guard's probe.

Examples
--------
>>> import numpy as np
>>> ring = PlanRing(slots=2, slot_bytes=4096)
>>> slot, layouts = ring.write([np.arange(4, dtype=np.int64)])
>>> reader = PlanRing.attach(ring.name, slots=2, slot_bytes=4096)
>>> [view.tolist() for view in reader.read(slot, layouts)]
[[0, 1, 2, 3]]
>>> reader.retire()
>>> reader.close()
>>> ring.close()
>>> leaked_segments()
[]
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np
from multiprocessing import shared_memory

from ..core.kernel import encode_items_column

__all__ = [
    "PlanRing",
    "split_task",
    "rebuild_task",
    "leaked_segments",
    "SEGMENT_PREFIX",
    "TRACKER_FORK_LOCK",
]

#: Serializes worker **forks** against resource-tracker critical
#: sections.  Creating/unlinking a ``SharedMemory`` segment registers it
#: with the process-global ``multiprocessing.resource_tracker``, whose
#: internal lock is NOT reinitialized across ``fork()``: a worker forked
#: (by one engine's pipeline thread) at the instant another thread (a
#: second engine's) holds that lock inherits it locked forever, and the
#: child then deadlocks on its first tracker call — its attach-time
#: ``SharedMemory`` registration — before ever reading its pipe, which
#: in turn wedges the parent's next ``collect()``.  Every parent-side
#: tracker touchpoint in this package (ring create/unlink) and every
#: ``Process.start()`` in the persistent executor takes this lock, so a
#: fork can never observe the tracker lock mid-critical-section (the
#: worker-side :meth:`PlanRing.attach` must NOT take it — the child
#: inherits it in the locked state).  An ``RLock`` because a
#: GC-triggered ``PlanRing.__del__`` may fire inside a locked region on
#: the same thread.
TRACKER_FORK_LOCK = threading.RLock()

#: Shared-memory segment name prefix (``{prefix}_{pid}_{token}``): the
#: pid scopes :func:`leaked_segments` to the creating process.
SEGMENT_PREFIX = "repro_plan"

#: Control header bytes at the start of the segment (one cache line);
#: holds the worker-written retired counter (uint64 at offset 0).
_CTRL_BYTES = 64

#: Column starts are 8-byte aligned inside a slot so every numeric view
#: is a properly aligned ndarray.
_ALIGN = 8

#: Default seconds ``write`` waits for a free slot before concluding the
#: worker is stalled.
DEFAULT_WRITE_TIMEOUT = 60.0


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class PlanRing:
    """A single-producer/single-consumer slot ring in shared memory.

    The parent constructs (owns) the segment; the worker maps it with
    :meth:`attach`.  ``slots`` bounds the plans in flight; each slot is
    ``slot_bytes`` of column payload.  Producer-side state is the local
    ``issued`` counter; consumer progress is the shared retired counter,
    so no locks are needed: the producer only writes slots the consumer
    has retired, and the consumer only reads slots the producer pointed
    it at through the pipe descriptor (the pipe preserves order).
    """

    __slots__ = ("slots", "slot_bytes", "_shm", "_owner", "_retired", "_issued")

    slots: int
    slot_bytes: int
    _shm: Optional[shared_memory.SharedMemory]
    _owner: bool
    _retired: Optional[np.ndarray]
    _issued: int

    def __init__(
        self,
        slots: int = 8,
        slot_bytes: int = 1 << 20,
        *,
        name: Optional[str] = None,
    ) -> None:
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if slot_bytes <= 0:
            raise ValueError(f"slot_bytes must be positive, got {slot_bytes}")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        if name is None:
            name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        with TRACKER_FORK_LOCK:  # creation registers with the tracker
            self._shm = shared_memory.SharedMemory(
                name=name,
                create=True,
                size=_CTRL_BYTES + self.slots * self.slot_bytes,
            )
        self._owner = True
        self._retired = np.ndarray((1,), dtype=np.uint64, buffer=self._shm.buf)
        self._retired[0] = 0
        self._issued = 0

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "PlanRing":
        """Map an existing ring (worker side; never unlinks).

        Attaching re-registers the name with the resource tracker, but
        workers are children of the creator and share its tracker
        process, so the registration dedups into the owner's entry; the
        owner's ``unlink`` retires it exactly once.
        """
        ring = cls.__new__(cls)
        ring.slots = int(slots)
        ring.slot_bytes = int(slot_bytes)
        # deliberately NOT under TRACKER_FORK_LOCK: attach runs in the
        # freshly forked worker, which inherited that lock in the locked
        # state (the parent holds it across the fork precisely so the
        # tracker's own lock is free here) — taking it would self-
        # deadlock, and no sibling thread exists in the child to race
        shm = shared_memory.SharedMemory(name=name)
        ring._shm = shm
        ring._owner = False
        ring._retired = np.ndarray((1,), dtype=np.uint64, buffer=shm.buf)
        ring._issued = 0
        return ring

    @property
    def name(self) -> str:
        """The shared-memory segment name (ships in the worker's args)."""
        assert self._shm is not None, "ring is closed"
        return self._shm.name

    def in_flight(self) -> int:
        """Slots written but not yet retired by the consumer."""
        assert self._retired is not None, "ring is closed"
        return self._issued - int(self._retired[0])

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def write(
        self,
        columns: Sequence[np.ndarray],
        timeout: Optional[float] = DEFAULT_WRITE_TIMEOUT,
    ) -> Optional[Tuple[int, List[Tuple[str, int]]]]:
        """Copy ``columns`` into the next free slot.

        Returns ``(slot, layouts)`` where ``layouts`` is one
        ``(dtype_str, length)`` pair per column — everything the
        consumer needs to rebuild the views — or ``None`` when the
        payload exceeds ``slot_bytes`` (the caller falls back to the
        pipe).  Blocks while all slots are in flight; raises
        ``RuntimeError`` after ``timeout`` seconds of no consumer
        progress (a dead or wedged worker must not hang the parent).
        """
        assert self._shm is not None, "ring is closed"
        columns = [np.ascontiguousarray(col) for col in columns]
        if sum(_aligned(col.nbytes) for col in columns) > self.slot_bytes:
            return None
        if self.in_flight() >= self.slots:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while self.in_flight() >= self.slots:
                if deadline is not None and time.monotonic() > deadline:
                    raise RuntimeError(
                        f"shared-memory plan ring {self.name} full for "
                        f"{timeout}s ({self.slots} slots in flight) — "
                        f"worker stalled or dead"
                    )
                time.sleep(0.0002)
        slot = self._issued % self.slots
        base = _CTRL_BYTES + slot * self.slot_bytes
        buf = self._shm.buf
        offset = 0
        layouts: List[Tuple[str, int]] = []
        for col in columns:
            view = np.ndarray(
                col.shape, dtype=col.dtype, buffer=buf, offset=base + offset
            )
            np.copyto(view, col, casting="no")
            del view
            layouts.append((col.dtype.str, int(col.shape[0])))
            offset += _aligned(col.nbytes)
        self._issued += 1
        return slot, layouts

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def read(
        self, slot: int, layouts: Sequence[Tuple[str, int]]
    ) -> List[np.ndarray]:
        """Zero-copy views over one written slot's columns.

        The views alias the slot: they are valid until :meth:`retire`
        frees it for reuse, so consumers must drop them (or copy) before
        retiring.
        """
        assert self._shm is not None, "ring is closed"
        base = _CTRL_BYTES + slot * self.slot_bytes
        buf = self._shm.buf
        offset = 0
        views: List[np.ndarray] = []
        for dtype_str, length in layouts:
            dtype = np.dtype(dtype_str)
            views.append(
                np.ndarray((length,), dtype=dtype, buffer=buf, offset=base + offset)
            )
            offset += _aligned(length * dtype.itemsize)
        return views

    def retire(self) -> None:
        """Mark the oldest in-flight slot consumed (frees it for reuse).

        A single aligned 8-byte store of the incremented counter; the
        producer polls it, so no message crosses the pipe.
        """
        assert self._retired is not None, "ring is closed"
        self._retired[0] += np.uint64(1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment; the owning side also unlinks it (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._retired = None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a column view outlived us
            # the mapping lives until the stray view dies; unlink still
            # removes the name so nothing persists past the process
            pass
        if self._owner:
            try:
                with TRACKER_FORK_LOCK:  # unlink unregisters with the tracker
                    shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - interpreter-teardown best effort
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "closed" if self._shm is None else self.name
        return (
            f"PlanRing({state}, slots={self.slots}, "
            f"slot_bytes={self.slot_bytes}, owner={self._owner})"
        )


# ----------------------------------------------------------------------
# task <-> column translation
# ----------------------------------------------------------------------
def split_task(task: Sequence) -> Optional[tuple]:
    """Split an executor task tuple into ring columns plus a recipe.

    Returns ``(columns, recipe)`` — ``columns`` the arrays to ship
    through the ring, ``recipe`` one entry per task element telling
    :func:`rebuild_task` how to restore it:

    * ``("arr", i)`` — element was a 1-D numeric/fixed-width array;
      restored as the zero-copy view of column ``i``;
    * ``("list", i)`` — element was a list that
      :func:`~repro.core.kernel.encode_items_column` encoded losslessly;
      restored as the *equal* list (``column.tolist()``);
    * ``("obj", value)`` — element rides inline in the pipe descriptor
      (pickled as usual).

    Returns ``None`` when no element can ride a column — the caller
    should send the classic pipe message instead.
    """
    columns: List[np.ndarray] = []
    recipe: List[tuple] = []
    for arg in task:
        if (
            isinstance(arg, np.ndarray)
            and arg.ndim == 1
            and arg.dtype.kind in "iufSU"
        ):
            recipe.append(("arr", len(columns)))
            columns.append(arg)
            continue
        if isinstance(arg, list):
            encoded = encode_items_column(arg)
            if encoded is not None:
                recipe.append(("list", len(columns)))
                columns.append(encoded)
                continue
        recipe.append(("obj", arg))
    if not columns:
        return None
    return columns, recipe


def rebuild_task(views: Sequence[np.ndarray], recipe: Sequence[tuple]) -> tuple:
    """Restore the task tuple :func:`split_task` described (worker side).

    ``("arr", i)`` elements come back as the slot views themselves —
    valid only until the slot is retired; ``("list", i)`` elements
    decode to plain Python lists (safe past retirement); ``("obj", v)``
    elements pass through.
    """
    args = []
    for kind, payload in recipe:
        if kind == "arr":
            args.append(views[payload])
        elif kind == "list":
            args.append(views[payload].tolist())
        else:
            args.append(payload)
    return tuple(args)


def leaked_segments(pid: Optional[int] = None) -> List[str]:
    """Names of this process's plan segments still present in ``/dev/shm``.

    The session-wide test guard calls this after every ring should have
    been closed; a non-empty result means some teardown path dropped an
    ``unlink``.  Returns ``[]`` on platforms without ``/dev/shm``.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    prefix = f"{SEGMENT_PREFIX}_{os.getpid() if pid is None else pid}_"
    try:
        return sorted(
            entry.name for entry in root.iterdir()
            if entry.name.startswith(prefix)
        )
    except OSError:  # pragma: no cover - raced teardown
        return []
