"""Pluggable executors for per-shard ingestion work.

:class:`repro.sharding.sharded.ShardedSketch` hands each shard's batch
plan to an executor's :meth:`map`; the executor decides where the work
runs.  Three strategies ship:

* :class:`SerialExecutor` — run shard plans one after another in the
  calling thread.  Zero overhead, the default, and the baseline the
  sharded-ingest bench gates against.
* :class:`ThreadExecutor` — a ``concurrent.futures`` thread pool.  Under
  CPython's GIL pure-Python sketch updates do not speed up wall-clock,
  but the strategy exercises the exact concurrency structure a
  free-threaded build or a C-accelerated sketch kernel would use, and it
  overlaps any I/O a custom sketch performs.
* :class:`ProcessExecutor` — a process pool using a *round-trip* model:
  the shard sketch and its plan are pickled to a worker, mutated there,
  and the updated sketch is pickled back.  Shards therefore always live
  in the parent between calls (queries never cross process boundaries),
  at the price of serializing state both ways — profitable only when the
  per-batch compute dwarfs the pickling cost.  Sketches with deep linked
  structures (large Space Saving bucket chains) may need a raised
  recursion limit to pickle.

All executors implement ``map(fn, tasks)`` — apply ``fn(*task)`` for each
task, returning results in task order — and ``close()``.  Any object with
that surface can be passed wherever an executor name is accepted.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]


class SerialExecutor:
    """Run shard plans sequentially in the calling thread (the default)."""

    def map(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Apply ``fn(*task)`` per task, in order."""
        return [fn(*task) for task in tasks]

    def close(self) -> None:
        """Nothing to release."""


class _PoolExecutor:
    """Shared lazy-pool plumbing for the thread/process strategies."""

    _pool_cls = None  # set by subclasses

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.max_workers)
        return self._pool

    def map(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Apply ``fn(*task)`` per task on the pool, preserving order."""
        if not tasks:
            return []
        pool = self._ensure_pool()
        return list(pool.map(fn, *zip(*tasks)))

    def close(self) -> None:
        """Shut the pool down (idempotent); a later map() re-creates it."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-teardown best effort
        try:
            self.close()
        except Exception:
            pass


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution of shard plans (lazy pool creation)."""

    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution via sketch round-tripping.

    ``fn`` and every task element must be picklable; the returned
    (mutated) sketch replaces the parent's copy.
    """

    _pool_cls = ProcessPoolExecutor


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(spec: object = "serial"):
    """Resolve an executor: a name (``serial``/``thread``/``process``) or
    any ready object exposing ``map``/``close``."""
    if isinstance(spec, str):
        try:
            cls = _EXECUTORS[spec]
        except KeyError:
            raise ValueError(
                f"unknown executor {spec!r}; expected one of "
                f"{sorted(_EXECUTORS)}"
            ) from None
        return cls()
    if hasattr(spec, "map") and hasattr(spec, "close"):
        return spec
    raise TypeError(
        f"executor must be a name or expose map()/close(), got {spec!r}"
    )
