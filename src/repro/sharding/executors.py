"""Pluggable executors for per-shard ingestion work.

:class:`repro.sharding.sharded.ShardedSketch` hands each shard's batch
plan to an executor; the executor decides where the work runs.  Four
strategies ship:

* :class:`SerialExecutor` — run shard plans one after another in the
  calling thread.  Zero overhead, the default, and the baseline the
  sharded-ingest bench gates against.
* :class:`ThreadExecutor` — a ``concurrent.futures`` thread pool.  Under
  CPython's GIL pure-Python sketch updates do not speed up wall-clock,
  but the strategy exercises the exact concurrency structure a
  free-threaded build or a C-accelerated sketch kernel would use, and it
  overlaps any I/O a custom sketch performs.
* :class:`ProcessExecutor` — a process pool using a *round-trip* model:
  the shard sketch and its plan are pickled to a worker, mutated there,
  and the updated sketch is pickled back.  Shards therefore always live
  in the parent between calls (queries never cross process boundaries),
  at the price of serializing state both ways — profitable only when the
  per-batch compute dwarfs the pickling cost.
* :class:`PersistentProcessExecutor` — one long-lived worker process per
  shard holding the shard sketch **resident**: the initial state is
  shipped once (``seed``), each batch sends only its per-shard plan
  (positions + owned items) over a pipe, and state returns to the parent
  only on demand (``collect``, which :class:`ShardedSketch` triggers
  lazily at the first query after ingestion).  This removes the
  per-batch state round-trip that makes :class:`ProcessExecutor`
  profitable only for huge batches, and it is the strategy whose
  ingestion critical path actually scales with shard count.  Marked
  ``stateful = True`` so the sharding layer switches to the
  seed/submit/collect protocol instead of ``map``.

  The plan payload channel is the ``transport`` knob: ``"pipe"``
  (default) pickles each task into the worker pipe; ``"shm"`` adds one
  :class:`~repro.sharding.shm.PlanRing` shared-memory ring per worker —
  vectorizable task columns (numpy plan columns, int/str/bytes item
  lists) are written into the ring and the pipe carries only a slot
  descriptor, with automatic per-task fallback to the pickle message
  for payloads that don't fit a slot or can't ride a column.  Both
  transports deliver equal task arguments, pinned by the differential
  suite in ``tests/sharding/test_shm_transport.py``.

The stateless executors implement ``map(fn, tasks)`` — apply
``fn(*task)`` for each task, returning results in task order — and
``close()``.  Any object with that surface can be passed wherever an
executor name is accepted; objects additionally exposing the stateful
protocol (``stateful``/``seed``/``submit``/``broadcast``/``collect``)
get the resident-worker treatment.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from .shm import PlanRing, TRACKER_FORK_LOCK, rebuild_task, split_task

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PersistentProcessExecutor",
    "make_executor",
    "TRANSPORTS",
]

#: Plan payload channels the persistent executor supports.
TRANSPORTS = ("pipe", "shm")

#: How long :meth:`PersistentProcessExecutor.collect` waits for a worker
#: reply before raising.  A healthy worker answers in milliseconds even
#: with a large resident state; the deadline exists so a wedged or dead
#: worker turns into a loud, diagnosable failure instead of an infinite
#: parent hang.
DEFAULT_COLLECT_TIMEOUT = 120.0


class SerialExecutor:
    """Run shard plans sequentially in the calling thread (the default)."""

    def map(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Apply ``fn(*task)`` per task, in order."""
        return [fn(*task) for task in tasks]

    def close(self) -> None:
        """Nothing to release."""


class _PoolExecutor:
    """Shared lazy-pool plumbing for the thread/process strategies."""

    _pool_cls = None  # set by subclasses

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(
                f"max_workers must be positive, got {max_workers}"
            )
        self.max_workers = max_workers
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.max_workers)
        return self._pool

    def map(self, fn: Callable, tasks: Sequence[Tuple]) -> List:
        """Apply ``fn(*task)`` per task on the pool, preserving order.

        One future per task (not ``pool.map`` over transposed columns,
        which silently returned ``[]`` for zero-arity tasks and
        truncated ragged ones), so the result always has exactly one
        entry per task.
        """
        if not tasks:
            return []
        pool = self._ensure_pool()
        futures = [pool.submit(fn, *task) for task in tasks]
        results = [future.result() for future in futures]
        if len(results) != len(tasks):  # pragma: no cover - structural guard
            raise RuntimeError(
                f"executor returned {len(results)} results for "
                f"{len(tasks)} tasks"
            )
        return results

    def close(self) -> None:
        """Shut the pool down (idempotent); a later map() re-creates it."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-teardown best effort
        try:
            self.close()
        except Exception:
            pass


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution of shard plans (lazy pool creation)."""

    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution via sketch round-tripping.

    ``fn`` and every task element must be picklable; the returned
    (mutated) sketch replaces the parent's copy.
    """

    _pool_cls = ProcessPoolExecutor


def _persistent_worker(
    conn,
    ring_args: Optional[Tuple] = None,
    stale_fds: Tuple[int, ...] = (),
) -> None:
    """Loop of one resident shard worker (module-level: must pickle).

    The worker owns its shard sketch for the lifetime of the process.
    Messages: ``("seed", shard)`` installs state; ``("apply", fn, *args)``
    runs ``fn(shard, *args)`` in place; ``("apply_cols", fn, slot,
    layouts, recipe)`` rebuilds the args as zero-copy views over the
    shared-memory ring named by ``ring_args`` and applies them, retiring
    the slot afterwards **whether or not the apply succeeded** (a
    poisoned worker that stopped retiring would deadlock the parent's
    backpressure wait); ``("collect",)`` ships the current state (or the
    first recorded failure) back; ``("stop",)`` exits.  A failed apply
    poisons the worker — later applies are skipped and the error
    surfaces at the next collect — so the parent never silently
    continues on half-applied state.

    Orphan safety: a plain blocking ``recv`` cannot notice a SIGKILLed
    parent under the fork start method — every later-forked sibling
    (and this worker itself) inherits a copy of the pipe's write end,
    so EOF never arrives.  ``stale_fds`` are those inherited parent-end
    descriptors (this pipe's and earlier siblings'); closing them first
    thing restores real EOF/EPIPE semantics, so a worker blocked
    **sending** a reply when the parent dies gets ``BrokenPipeError``
    instead of sleeping forever on a socket its own inherited fd keeps
    alive.  The loop additionally polls the pipe and exits when the
    process is re-parented (``getppid`` changed) as a belt-and-braces
    path; either way the shared resource tracker unlinks any shm rings
    once the last worker is gone.
    """
    for fd in stale_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed elsewhere
            pass
    shard = None
    error: Optional[str] = None
    parent_pid = os.getppid()
    ring = PlanRing.attach(*ring_args) if ring_args is not None else None
    try:
        while True:
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # orphaned: parent died without ("stop",)
            try:
                msg = conn.recv()
            except EOFError:  # parent went away
                return
            kind = msg[0]
            if kind == "apply":
                if error is None:
                    try:
                        fn = msg[1]
                        fn(shard, *msg[2:])
                    except BaseException:
                        error = traceback.format_exc()
            elif kind == "apply_cols":
                try:
                    if error is None:
                        fn, slot, layouts, recipe = msg[1:5]
                        args = rebuild_task(ring.read(slot, layouts), recipe)
                        try:
                            fn(shard, *args)
                        finally:
                            # drop the zero-copy views before the slot
                            # is handed back for reuse
                            del args
                except BaseException:
                    error = traceback.format_exc()
                finally:
                    ring.retire()
            elif kind == "collect":
                if error is not None:
                    conn.send(("error", error))
                else:
                    try:
                        conn.send(("state", shard))
                    except BaseException:
                        conn.send(("error", traceback.format_exc()))
            elif kind == "seed":
                shard = msg[1]
                error = None
            elif kind == "stop":
                conn.close()
                return
    finally:
        if ring is not None:
            ring.close()


class PersistentProcessExecutor:
    """Resident shard workers: state stays put, only plans cross the pipe.

    One worker process per shard.  ``seed(shards)`` ships each shard's
    initial state once; ``submit(fn, tasks)`` sends one
    ``fn(shard, *task)`` application per worker **without waiting** (the
    parent can partition the next batch while workers apply — applies on
    one worker are strictly ordered by the pipe); ``collect()`` is the
    synchronization point that returns the current shard states (and
    raises if any worker failed since the last seed).  ``close()``
    terminates the workers; the sketch re-seeds lazily afterwards.
    """

    stateful = True

    def __init__(
        self,
        mp_context: Optional[str] = None,
        *,
        transport: str = "pipe",
        ring_slots: int = 8,
        ring_slot_bytes: int = 1 << 20,
    ) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got {transport!r}"
            )
        if ring_slots <= 0:
            raise ValueError(f"ring_slots must be positive, got {ring_slots}")
        if ring_slot_bytes <= 0:
            raise ValueError(
                f"ring_slot_bytes must be positive, got {ring_slot_bytes}"
            )
        self._ctx = mp.get_context(mp_context)
        self.transport = transport
        self.ring_slots = int(ring_slots)
        self.ring_slot_bytes = int(ring_slot_bytes)
        self._workers: List = []
        self._conns: List = []
        self._rings: List[Optional[PlanRing]] = []

    @property
    def seeded(self) -> bool:
        """Whether resident workers currently hold shard state."""
        return bool(self._workers)

    def seed(self, shards: Sequence) -> None:
        """Spawn one resident worker per shard and ship initial state.

        Workers (and their shared-memory rings, under the ``shm``
        transport) register before their state ships, so a mid-loop
        failure (an unpicklable shard, a dead pipe) tears every spawned
        worker and segment down via :meth:`close` instead of leaking
        processes blocked on ``recv`` or unlinked segments.
        """
        self.close()
        # under fork, each worker inherits the parent end of its own
        # pipe and of every earlier sibling's; hand those fd numbers to
        # the child so it can close them and restore EOF/EPIPE semantics
        # (meaningless under spawn, where fds are not inherited)
        fork = self._ctx.get_start_method() == "fork"
        try:
            for shard in shards:
                ring_args = None
                if self.transport == "shm":
                    ring = PlanRing(self.ring_slots, self.ring_slot_bytes)
                    self._rings.append(ring)
                    ring_args = (ring.name, ring.slots, ring.slot_bytes)
                else:
                    self._rings.append(None)
                parent_conn, child_conn = self._ctx.Pipe()
                stale_fds = (
                    tuple(c.fileno() for c in self._conns)
                    + (parent_conn.fileno(),)
                    if fork
                    else ()
                )
                worker = self._ctx.Process(
                    target=_persistent_worker,
                    args=(child_conn, ring_args, stale_fds),
                    daemon=True,
                )
                # under fork, starting a worker while another thread (a
                # second engine's pipeline, say) sits in a resource-
                # tracker critical section would hand the child that
                # lock in a locked state — it then deadlocks on its
                # attach-time tracker registration before ever reading
                # its pipe.  TRACKER_FORK_LOCK serializes the fork
                # against every tracker touchpoint in this package.
                with TRACKER_FORK_LOCK:
                    worker.start()
                child_conn.close()
                self._workers.append(worker)
                self._conns.append(parent_conn)
                parent_conn.send(("seed", shard))
        except BaseException:
            self.close()
            raise

    def submit(self, fn: Callable, tasks: Sequence[Tuple]) -> None:
        """Send one ``fn(shard, *task)`` application per worker (no wait).

        Under the ``shm`` transport each task's vectorizable columns go
        through the worker's ring and the pipe carries a slot
        descriptor; a task whose payload exceeds a ring slot (or has no
        columns at all) falls back to the classic pickle message, so
        submit never fails on payload shape.  The only wait is ring
        backpressure: with every slot still in flight, the write blocks
        until the worker retires one.
        """
        if len(tasks) != len(self._conns):
            raise RuntimeError(
                f"{len(tasks)} tasks for {len(self._conns)} resident workers"
            )
        if self.transport == "shm":
            for conn, ring, task in zip(self._conns, self._rings, tasks):
                split = split_task(task)
                if split is not None:
                    columns, recipe = split
                    written = ring.write(columns)
                    if written is not None:
                        slot, layouts = written
                        conn.send(("apply_cols", fn, slot, layouts, recipe))
                        continue
                conn.send(("apply", fn, *task))
            return
        for conn, task in zip(self._conns, tasks):
            conn.send(("apply", fn, *task))

    def broadcast(self, fn: Callable, *args) -> None:
        """Send the same ``fn(shard, *args)`` application to every worker."""
        for conn in self._conns:
            conn.send(("apply", fn, *args))

    def collect(
        self, timeout: Optional[float] = DEFAULT_COLLECT_TIMEOUT
    ) -> List:
        """Fetch current shard states (the sync point; raises on failure).

        Each worker gets up to ``timeout`` seconds to start replying
        (``None`` waits forever).  The deadline is far above any healthy
        reply latency — it exists so a wedged or silently-dead worker
        surfaces as a ``RuntimeError`` naming the worker and its state
        instead of deadlocking the parent (and CI) indefinitely.
        """
        for conn in self._conns:
            conn.send(("collect",))
        states: List = []
        failures: List[str] = []
        for index, conn in enumerate(self._conns):
            if timeout is not None and not conn.poll(timeout):
                worker = self._workers[index]
                status = (
                    "alive"
                    if worker.is_alive()
                    else f"dead (exitcode {worker.exitcode})"
                )
                raise RuntimeError(
                    f"persistent shard worker {index} sent no reply for "
                    f"{timeout}s (worker {status}) — wedged or deadlocked"
                )
            kind, payload = conn.recv()
            if kind == "error":
                failures.append(payload)
                states.append(None)
            else:
                states.append(payload)
        if failures:
            raise RuntimeError(
                "persistent shard worker(s) failed:\n" + "\n".join(failures)
            )
        return states

    def close(self) -> None:
        """Stop all resident workers (idempotent); state in them is lost.

        Shared-memory rings are closed (and unlinked) only after the
        workers joined, so no worker is left applying against an
        unlinked mapping; a worker that had to be terminated still gets
        its segment unlinked here — the parent owns every ring.
        """
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for worker in self._workers:
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5)
        for ring in self._rings:
            if ring is not None:
                ring.close()
        self._workers = []
        self._conns = []
        self._rings = []

    def __del__(self):  # pragma: no cover - interpreter-teardown best effort
        try:
            self.close()
        except Exception:
            pass


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "persistent": PersistentProcessExecutor,
}


def make_executor(spec: object = "serial"):
    """Resolve an executor: a name (``serial``/``thread``/``process``/
    ``persistent``) or any ready object exposing one of the protocols.

    The stateful (resident-worker) protocol is checked **first**: an
    executor declaring ``stateful`` with the full
    ``seed``/``submit``/``broadcast``/``collect``/``close`` surface gets
    the resident treatment even when it also exposes a stateless
    ``map()`` — matching how :class:`ShardedSketch` routes ingestion off
    the ``stateful`` flag.
    """
    if isinstance(spec, str):
        try:
            cls = _EXECUTORS[spec]
        except KeyError:
            raise ValueError(
                f"unknown executor {spec!r}; expected one of "
                f"{sorted(_EXECUTORS)}"
            ) from None
        return cls()
    if getattr(spec, "stateful", False):
        # a declared stateful executor must carry the complete
        # resident-worker protocol: ShardedSketch routes ingestion off
        # the flag, so letting one through on the map()/close() fallback
        # would defer the failure to a mid-ingestion AttributeError
        missing = [
            name
            for name in ("seed", "submit", "broadcast", "collect", "close")
            if getattr(spec, name, None) is None
        ]
        if missing:
            raise TypeError(
                f"executor declares stateful=True but is missing "
                f"{'/'.join(missing)} of the resident-worker protocol: "
                f"{spec!r}"
            )
        return spec
    if (
        getattr(spec, "map", None) is not None
        and getattr(spec, "close", None) is not None
    ):
        return spec
    raise TypeError(
        f"executor must be a name, expose map()/close(), or expose the "
        f"stateful seed/submit/broadcast/collect/close protocol, got {spec!r}"
    )
