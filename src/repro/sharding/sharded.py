"""Sharded sliding-window ingestion over any :class:`SlidingSketch`.

The batch engine (PR 1) made one sketch fast; this layer scales *out*:
a :class:`ShardedSketch` hash-partitions the key space across ``S``
independent shard sketches, feeds each shard through the batch path, and
combines shard state at query time (Section 4.3's mergeability, lifted
to sliding windows).

The central design point is **global-window alignment**.  A windowed
shard (anything satisfying :class:`repro.core.api.WindowedSketch`, i.e.
the Memento family and the exact window oracle) does not simply receive
its own sub-stream: packets owned by *other* shards are applied as
``ingest_gap`` window advances, so every shard's window spans exactly
the last ``W`` packets of the **global** stream.  Gap runs collapse into
O(1) counter arithmetic (the controller-path trick), so per-shard work
stays proportional to its owned traffic plus rare boundary bookkeeping —
this is what makes the partitioning a genuine scale-out rather than ``S``
copies of the full stream.  Interval sketches (Space Saving, MST, RHHH)
have no window to advance and simply receive their owned packets.

Two query disciplines cover the two ways keys relate to routing:

* ``route`` (default) — the aggregation key *is* the routing key, so one
  shard owns all of a key's traffic: point queries go to the owner, and
  heavy-hitter sets are disjoint unions.  Per-shard error is ``nⱼ/m``,
  trivially within the merged ``Σ nᵢ/m`` bound.
* ``sum`` — aggregation keys differ from routing keys (H-Memento routes
  by packet while answering *prefix* queries, and a /8's packets spread
  across shards), so estimates are summed across shards.  Upper bounds
  sum to an upper bound, and heavy-hitter enumeration runs through the
  window-aware merge (:func:`repro.core.merge.merge_windowed_entry_sets`)
  with its summed-quantum error bound.

Merged snapshots are cached and invalidated by an ingestion version
counter, so repeated queries between batches merge once.

``pipeline=...`` enables the **pipelined ingestion front-end**
(:mod:`repro.sharding.pipeline`): scalar and report-scale writes
coalesce in a bounded buffer and a background partitioner thread
overlaps chunk partitioning (and the blocking pipe sends) with the
persistent executor's worker applies.  Every query path drains the
pipeline first (via ``_sync_shards``), so results stay identical to
synchronous ingestion; :meth:`ShardedSketch.flush` is the explicit sync
point.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from itertools import chain
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.api import Entry, SlidingSketch, WindowedEntries
from ..core.batching import BatchIngest, as_batch
from ..core.kernel import plan_from_positions
from ..core.merge import (
    MergedWindowSketch,
    merge_entry_sets,
    merge_windowed_entry_sets,
)
from .executors import make_executor
from .pipeline import PipelinedDispatcher, WriteBuffer, make_pipeline_config

__all__ = ["ShardedSketch", "shard_index"]

_MASK64 = (1 << 64) - 1

QUERY_MODES = ("route", "sum")

#: Batch size (items) above which the per-shard item gathers fan out
#: across the shared thread pool.  ``np.take`` releases the GIL for
#: large gathers, so overlapping them only pays off once each gather is
#: big enough to amortize the task handoff; below the bar the loop runs
#: inline.
PARALLEL_GATHER_MIN = 1 << 16

_GATHER_POOL: Optional[ThreadPoolExecutor] = None


def _gather_pool() -> ThreadPoolExecutor:
    """The process-wide gather pool (lazily created, shared by all
    sketches — gathers are pure reads, so interleaving is safe)."""
    global _GATHER_POOL
    if _GATHER_POOL is None:
        _GATHER_POOL = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="shard-gather"
        )
    return _GATHER_POOL


def _mix64(value: int) -> int:
    """Finalizing 64-bit mix (murmur3 fmix64): decorrelates low bits so
    ``% shards`` never keys off structured low-order key bits."""
    value &= _MASK64
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK64
    value ^= value >> 33
    return value


def shard_index(key: Hashable, shards: int) -> int:
    """Deterministic shard owner of ``key`` among ``shards`` partitions.

    Integers are mixed directly (stable across processes); other types
    go through ``hash()`` first (stable within a process — set
    ``PYTHONHASHSEED`` for cross-process stability of strings).
    """
    h = key if isinstance(key, int) else hash(key)
    return _mix64(h) % shards


def _group_by_owner(owners: np.ndarray, shards: int) -> List[np.ndarray]:
    """Per-shard ascending position arrays from an owner column.

    One stable argsort plus a ``searchsorted`` over the shard ids
    replaces the historical ``S`` boolean-mask passes
    (``index[owners == j]`` per shard): the stable sort keeps equal
    owners in stream order, so each returned group is exactly the
    ascending index array the mask pass produced — pinned byte-identical
    by ``tests/sharding/test_partition.py``.
    """
    order = np.argsort(owners, kind="stable")
    bounds = np.searchsorted(
        owners[order], np.arange(1, shards, dtype=owners.dtype)
    )
    return np.split(order, bounds)


def _gather_items(probe: np.ndarray, groups: List[np.ndarray]) -> List[np.ndarray]:
    """Gather each group's items from the probe column.

    Large batches fan the per-shard ``np.take`` gathers across the
    shared thread pool (``np.take`` releases the GIL); small ones run
    inline — the handoff would cost more than the copy.
    """
    if probe.size >= PARALLEL_GATHER_MIN and len(groups) > 1:
        return list(_gather_pool().map(probe.take, groups))
    return [probe.take(group) for group in groups]


def _apply_shard_plan(shard, positions, items, total, windowed, method):
    """Apply one shard's slice of a global batch; returns the shard.

    ``positions`` are the global batch indices of the shard's owned
    ``items`` (ascending).  The slice is compiled into a kernel
    :class:`~repro.core.kernel.IngestPlan` — run-length-encoded unowned
    gaps plus contiguous owned segments, boundaries found with one
    vectorized pass — and consumed through the shard's ``ingest_plan``
    (``sampled=True`` routes pre-sampled controller feeds through
    ``ingest_samples``).  Windowed shards thereby stay aligned with the
    *global* window; interval shards just receive their owned packets.
    Module-level (not a closure) so the process executors can pickle it.

    The columnar (shared-memory) lane passes ``positions``/``items`` as
    numpy arrays instead of lists: items decode to the plain Python
    objects the sketch would have seen (keeping resident state
    byte-identical to the pipe transport), positions stay a zero-copy
    view, and the owned-packet feed routes through the sketch's fused
    ``ingest_plan_owned`` — semantically the per-item ``update`` path,
    minus the per-segment replay overhead.
    """
    columnar = isinstance(positions, np.ndarray)
    if isinstance(items, np.ndarray):
        # decode to Python objects: sketch state must not depend on the
        # transport (np.int64 keys would pickle differently)
        items = items.tolist()
    if not windowed:
        if items:
            getattr(shard, method)(items)
        return shard
    plan = plan_from_positions(
        items, np.asarray(positions, dtype=np.int64), total
    )
    if columnar and method != "ingest_samples":
        ingest_owned = getattr(shard, "ingest_plan_owned", None)
        if ingest_owned is not None:
            ingest_owned(plan)
            return shard
    ingest_plan = getattr(shard, "ingest_plan", None)
    if ingest_plan is not None:
        ingest_plan(plan, sampled=method == "ingest_samples")
        return shard
    # custom shard without the kernel surface: replay the plan manually
    ingest = getattr(shard, method)
    gap = shard.ingest_gap
    for lead, segment in plan.segments():
        if lead:
            gap(lead)
        if segment:
            ingest(segment)
    tail = plan.tail_gap
    if tail:
        gap(tail)
    return shard


def _apply_shard_gap(shard, count):
    """Advance one resident shard's window (persistent-executor message)."""
    shard.ingest_gap(count)
    return shard


class ShardedSketch(BatchIngest):
    """Hash-partitioned ensemble of sketches behind one SlidingSketch face.

    Parameters
    ----------
    factory:
        ``factory(shard_id) -> sketch``; called once per shard.  Give
        shards distinct seeds derived from ``shard_id`` when the sketch
        is randomized.
    shards:
        Number of partitions ``S``.  One shard bypasses hashing entirely
        and delegates straight to the inner sketch (the no-regression
        fast path the bench gates).
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"``, or any
        object with ``map(fn, tasks)``/``close()`` — see
        :mod:`repro.sharding.executors`.
    key_fn:
        Maps an *item* to its routing key (default: the item itself).
        H-Memento deployments route whole packets while querying
        prefixes, which is what ``query_mode="sum"`` exists for.
    query_mode:
        ``"route"`` — point queries go to the key's owning shard (valid
        when the query key equals the routing key); ``"sum"`` — sum the
        per-shard estimates (valid always, required when they differ).
    merge_counters:
        Counter budget of merged snapshots (default: every merged row is
        kept — the union is exact for disjoint shards).
    windowed:
        Declares whether the shards are window-advancing
        (:class:`~repro.core.api.WindowedSketch`) sketches.  ``None``
        (default) sniffs the first shard for ``ingest_gap`` — the
        historical behaviour; the engine registry passes the declared
        capability explicitly instead.  Declaring ``True`` for shards
        without ``ingest_gap`` fails fast.
    pipeline:
        ``None``/``False`` (default) keeps ingestion synchronous.
        ``True``, a buffer size, or a
        :class:`~repro.sharding.pipeline.PipelineConfig` enables the
        pipelined front-end: writes coalesce in a bounded buffer and a
        background thread partitions/dispatches them, overlapping with
        the persistent executor's worker applies.  Queries and
        :meth:`flush` are the sync points; results are identical to
        synchronous ingestion.

    Examples
    --------
    >>> from repro.core.space_saving import SpaceSaving
    >>> sharded = ShardedSketch(lambda i: SpaceSaving(64), shards=4)
    >>> sharded.update_many(["a", "b", "a", "c"])
    >>> sharded.query("a")
    2
    """

    def __init__(
        self,
        factory: Callable[[int], SlidingSketch],
        shards: int = 1,
        executor: object = "serial",
        key_fn: Optional[Callable[[Hashable], Hashable]] = None,
        query_mode: str = "route",
        merge_counters: Optional[int] = None,
        pipeline: object = None,
        windowed: Optional[bool] = None,
    ) -> None:
        # every knob validates BEFORE the factory runs: a bad executor or
        # pipeline spec must not first construct (and, for stateful
        # executors, potentially leak) S shard sketches
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        if query_mode not in QUERY_MODES:
            raise ValueError(
                f"query_mode must be one of {QUERY_MODES}, got {query_mode!r}"
            )
        if merge_counters is not None and merge_counters <= 0:
            raise ValueError(
                f"merge_counters must be positive, got {merge_counters}"
            )
        #: pipelined front-end (None = synchronous): a coalescing write
        #: buffer plus a lazily-started background dispatcher thread;
        #: every query path drains both through ``flush``
        self._pipeline_config = make_pipeline_config(pipeline)
        self._executor = make_executor(executor)
        self.num_shards = int(shards)
        self.query_mode = query_mode
        self.merge_counters = merge_counters
        self._key_fn = key_fn
        self._shards: List = [factory(i) for i in range(self.num_shards)]
        first = self._shards[0]
        #: shards that can advance their window without inserting get the
        #: global-window-aligned ingestion; interval sketches get substreams.
        #: The capability is declared (engine registry / WindowedSketch
        #: protocol) as the presence of the ingest_gap hook.
        has_gap = getattr(first, "ingest_gap", None) is not None
        if windowed is None:
            self.windowed = has_gap
        else:
            if windowed and not has_gap:
                raise TypeError(
                    f"shards declared windowed but {type(first).__name__} "
                    f"has no ingest_gap"
                )
            self.windowed = bool(windowed)
        #: a stateful executor keeps shard state resident in its workers:
        #: ingestion ships only plans, and ``_sync_shards`` pulls state
        #: back lazily at the first query after a batch
        self._stateful = bool(getattr(self._executor, "stateful", False))
        self._buffer = (
            WriteBuffer(self._pipeline_config.buffer_size)
            if self._pipeline_config is not None
            else None
        )
        self._dispatcher: Optional[PipelinedDispatcher] = None
        self._resident = False
        self._shards_stale = False
        self._updates = 0
        self._version = 0
        self._merge_version = -1
        self._merged_entries: Optional[List[Entry]] = None
        self._merged_view: Optional[MergedWindowSketch] = None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, item: Hashable) -> int:
        """The shard index owning ``item`` (after ``key_fn`` routing)."""
        key = item if self._key_fn is None else self._key_fn(item)
        return shard_index(key, self.num_shards)

    def _route_owners(
        self, items: Sequence
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Vectorized owner column for an integer batch, or ``None``.

        Returns ``(owners, probe)`` — the per-item shard ids and the
        items as a numpy column — for the common integer-packet streams;
        only a genuinely integral batch qualifies (a float anywhere
        makes ``asarray`` produce a float dtype, which would silently
        truncate and diverge from the scalar hash routing).  ``None``
        sends the caller to the Python-loop fallback.
        """
        if self._key_fn is not None or not len(items) or type(items[0]) is not int:
            return None
        try:
            probe = np.asarray(items)
        except (ValueError, TypeError, OverflowError):
            return None
        if probe.dtype.kind not in "iu":
            return None
        if probe.dtype.kind == "i":
            arr = probe.astype(np.int64).view(np.uint64)
        else:
            arr = probe.astype(np.uint64)
        mixed = arr.copy()
        mixed ^= mixed >> np.uint64(33)
        mixed *= np.uint64(0xFF51AFD7ED558CCD)
        mixed ^= mixed >> np.uint64(33)
        mixed *= np.uint64(0xC4CEB9FE1A85EC53)
        mixed ^= mixed >> np.uint64(33)
        owners = mixed % np.uint64(self.num_shards)
        return owners, probe

    def _partition(self, items: Sequence) -> List[tuple]:
        """Split a batch into per-shard ``(positions, items)`` list pairs."""
        shards = self.num_shards
        routed = self._route_owners(items)
        if routed is not None:
            owners, probe = routed
            groups = _group_by_owner(owners, shards)
            gathered = _gather_items(probe, groups)
            return [
                (positions.tolist(), owned.tolist())
                for positions, owned in zip(groups, gathered)
            ]
        key_fn = self._key_fn
        per_positions: List[list] = [[] for _ in range(shards)]
        per_items: List[list] = [[] for _ in range(shards)]
        for idx, item in enumerate(items):
            key = item if key_fn is None else key_fn(item)
            j = shard_index(key, shards)
            per_positions[j].append(idx)
            per_items[j].append(item)
        return list(zip(per_positions, per_items))

    def _partition_columns(self, items: Sequence) -> Optional[List[tuple]]:
        """Columnar :meth:`_partition`: per-shard ``(positions, items)``
        numpy pairs for the shared-memory transport, or ``None`` when the
        batch doesn't vectorize (the caller partitions into lists and the
        executor's per-task fallback picks the channel)."""
        routed = self._route_owners(items)
        if routed is None:
            return None
        owners, probe = routed
        groups = _group_by_owner(owners, self.num_shards)
        return list(zip(groups, _gather_items(probe, groups)))

    # ------------------------------------------------------------------
    # ingestion (SlidingSketch + WindowedSketch surface)
    # ------------------------------------------------------------------
    def update(self, item: Hashable) -> None:
        """Route one packet; windowed non-owners advance their window."""
        if self._buffer is not None:
            self._version += 1
            self._updates += 1
            self._buffer_write("update_many", (item,))
            return
        if self._resident:
            # shard state lives in the workers: route even scalars through
            # the plan pipeline so the resident copies stay authoritative
            self._dispatch([item], "update_many")
            return
        self._version += 1
        self._updates += 1
        if self.num_shards == 1:
            self._shards[0].update(item)
            return
        owner = self.shard_of(item)
        if self.windowed:
            for j, shard in enumerate(self._shards):
                if j == owner:
                    shard.update(item)
                else:
                    shard.ingest_gap(1)
        else:
            self._shards[owner].update(item)

    def update_many(self, items: Sequence) -> None:
        """Batch ingestion: partition once, apply per-shard plans."""
        self._dispatch(items, "update_many")

    def ingest_sample(self, item: Hashable) -> None:
        """Externally-sampled packet: Full update at the owner."""
        if self._buffer is not None:
            self._version += 1
            self._updates += 1
            self._buffer_write(
                "ingest_samples" if self.windowed else "update_many", (item,)
            )
            return
        if self._resident:
            self._dispatch(
                [item], "ingest_samples" if self.windowed else "update_many"
            )
            return
        self._version += 1
        self._updates += 1
        if self.num_shards == 1:
            shard = self._shards[0]
            if self.windowed:
                shard.ingest_sample(item)
            else:
                shard.update(item)
            return
        owner = self.shard_of(item)
        if self.windowed:
            for j, shard in enumerate(self._shards):
                if j == owner:
                    shard.ingest_sample(item)
                else:
                    shard.ingest_gap(1)
        else:
            self._shards[owner].update(item)

    def ingest_samples(self, items: Sequence) -> None:
        """Batch of externally-sampled packets (controller path)."""
        self._dispatch(items, "ingest_samples" if self.windowed else "update_many")

    def ingest_gap(self, count: int) -> None:
        """Advance every shard's window for ``count`` unobserved packets."""
        if not self.windowed:
            raise TypeError(
                "ingest_gap needs windowed shards (sketches with their own "
                "ingest_gap); interval sketches have no window to advance"
            )
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return
        self._version += 1
        self._updates += count
        if self._buffer is not None:
            if self._buffer.add_gap(count):
                self._spill_buffer()
            return
        self._gap_now(count)

    def _gap_now(self, count: int) -> None:
        """Apply a window advance to every shard (inline or pipelined)."""
        if self._resident:
            self._executor.broadcast(_apply_shard_gap, count)
            self._shards_stale = True
            return
        for shard in self._shards:
            shard.ingest_gap(count)

    def _dispatch(self, items: Sequence, method: str) -> None:
        items = as_batch(items)
        n = len(items)
        if n == 0:
            return
        self._version += 1
        self._updates += n
        if self._buffer is not None:
            self._buffer_write(method, items)
            return
        self._dispatch_now(items, method)

    def _dispatch_now(self, items: Sequence, method: str) -> None:
        """Partition one batch and apply it (inline or pipelined)."""
        n = len(items)
        if self.num_shards == 1:
            getattr(self._shards[0], method)(items)
            return
        windowed = self.windowed
        if self._stateful:
            partition = None
            if getattr(self._executor, "transport", None) == "shm":
                # columnar lane: positions/items stay numpy arrays so the
                # executor ships them through the shared-memory ring and
                # the worker consumes zero-copy views
                partition = self._partition_columns(items)
            if partition is None:
                partition = self._partition(items)
            if not self._resident:
                # ship current parent state once; from here on only the
                # per-shard plans cross the pipes
                self._executor.seed(self._shards)
                self._resident = True
            self._executor.submit(
                _apply_shard_plan,
                [
                    (positions, owned, n, windowed, method)
                    for positions, owned in partition
                ],
            )
            self._shards_stale = True
            return
        partition = self._partition(items)
        tasks = [
            (shard, positions, owned, n, windowed, method)
            for shard, (positions, owned) in zip(self._shards, partition)
        ]
        self._shards = self._executor.map(_apply_shard_plan, tasks)

    # ------------------------------------------------------------------
    # pipelined front-end plumbing
    # ------------------------------------------------------------------
    def _buffer_write(self, method: str, items: Sequence) -> None:
        """Coalesce a write into the buffer; spill once it fills up."""
        if self._buffer.add_items(method, items):
            self._spill_buffer()

    def _spill_buffer(self) -> None:
        """Hand every buffered op to the background dispatcher."""
        buffered = self._buffer.drain()
        if not buffered:
            return
        dispatcher = self._dispatcher
        if dispatcher is None:
            dispatcher = self._dispatcher = PipelinedDispatcher(
                self._dispatch_now,
                self._gap_now,
                depth=self._pipeline_config.depth,
            )
        for method, payload in buffered:
            dispatcher.submit(method, payload)

    def flush(self) -> None:
        """Synchronize the pipelined front-end (no-op when synchronous).

        Pushes buffered writes into the dispatch queue and blocks until
        the background thread has applied every in-flight op, raising if
        any dispatch failed since the last :meth:`close`.  Every query
        path routes through here (via ``_sync_shards``), so pipelined
        results are indistinguishable from synchronous ingestion.
        Idempotent: a drained pipeline flushes as a no-op.
        """
        if self._buffer is None:
            return
        self._spill_buffer()
        if self._dispatcher is not None:
            self._dispatcher.drain()

    @property
    def pipelined(self) -> bool:
        """Whether the pipelined ingestion front-end is enabled."""
        return self._buffer is not None

    def _sync_shards(self) -> None:
        """Drain the pipeline, then pull resident state back when stale."""
        self.flush()
        if self._shards_stale:
            self._shards = self._executor.collect()
            self._shards_stale = False

    # ------------------------------------------------------------------
    # queries (merge-on-query)
    # ------------------------------------------------------------------
    def query(self, key: Hashable) -> float:
        """Window/interval frequency estimate for ``key``.

        Route mode asks the owning shard (``key_fn`` applies, exactly as
        it did at ingestion); sum mode adds the per-shard estimates.
        """
        self._sync_shards()
        if self.query_mode == "route":
            return self._shards[self.shard_of(key)].query(key)
        return sum(shard.query(key) for shard in self._shards)

    @staticmethod
    def _query_method(shard, *names):
        """First of ``names`` the shard implements, else plain ``query``."""
        for name in names:
            fn = getattr(shard, name, None)
            if fn is not None:
                return fn
        return shard.query

    def query_lower(self, key: Hashable) -> float:
        """Guaranteed (lower-bound) part of the estimate."""
        self._sync_shards()
        if self.query_mode == "route":
            shard = self._shards[self.shard_of(key)]
            return self._query_method(shard, "query_lower", "lower_bound")(key)
        return sum(
            self._query_method(shard, "query_lower", "lower_bound")(key)
            for shard in self._shards
        )

    def query_point(self, key: Hashable) -> float:
        """Midpoint (bias-removed) estimate, for error metrics/detection."""
        self._sync_shards()
        if self.query_mode == "route":
            shard = self._shards[self.shard_of(key)]
            return self._query_method(shard, "query_point")(key)
        return sum(
            self._query_method(shard, "query_point")(key)
            for shard in self._shards
        )

    def candidates(self) -> Iterable[Hashable]:
        """Keys any shard currently tracks (disjoint under ``route``)."""
        self._sync_shards()
        iters = []
        for shard in self._shards:
            cand = getattr(shard, "candidates", None)
            if cand is not None:
                iters.append(cand())
            else:
                iters.append(key for key, _, _ in shard.entries())
        if self.num_shards == 1 or self.query_mode == "route":
            return chain.from_iterable(iters)
        seen: set = set()
        out = []
        for key in chain.from_iterable(iters):
            if key not in seen:
                seen.add(key)
                out.append(key)
        return out

    def entries(self) -> List[Entry]:
        """Merged ``(key, estimate, guaranteed)`` snapshot (cached)."""
        self._sync_shards()
        if self._merge_version != self._version or self._merged_entries is None:
            sets = [shard.entries() for shard in self._shards]
            budget = self.merge_counters or max(
                1, sum(len(rows) for rows in sets)
            )
            self._merged_entries = merge_entry_sets(sets, counters=budget)
            self._merged_view = None
            self._merge_version = self._version
        return self._merged_entries

    def merged_window(self) -> MergedWindowSketch:
        """Window-aware merged view of all shards (cached by version).

        Requires shards exposing ``windowed_entries`` (the Memento
        family); the view answers scaled queries and heavy-hitter
        enumeration with the summed-quantum error bound.
        """
        self._sync_shards()
        if self._merge_version != self._version or self._merged_view is None:
            snapshots = [shard.windowed_entries() for shard in self._shards]
            budget = self.merge_counters or max(
                1, sum(len(snap.entries) for snap in snapshots)
            )
            merged = merge_windowed_entry_sets(snapshots, counters=budget)
            self._merged_view = MergedWindowSketch(merged)
            self._merged_entries = list(merged.entries)
            self._merge_version = self._version
        return self._merged_view

    def _sum_heavy_hitters(self, theta: float) -> Dict[Hashable, float]:
        """Sum-mode enumeration: merged snapshot against the right bar.

        Memento-family shards go through the window-aware merged view
        (scaled estimates, ``theta · window`` bar).  Other shards merge
        their raw ``entries()``: exact window counters threshold against
        ``theta · window``, interval sketches against ``theta · n`` where
        ``n`` is the total ingested count (``Σ nᵢ``), matching each
        family's own ``heavy_hitters`` convention.
        """
        first = self._shards[0]
        if getattr(first, "windowed_entries", None) is not None:
            return self.merged_window().heavy_hitters(theta)
        if self.windowed:
            bar = theta * getattr(first, "window", self._updates)
        else:
            bar = theta * self._updates
        return {
            key: float(est) for key, est, _ in self.entries() if est > bar
        }

    def _route_heavy(self, theta: float, attr: str) -> Dict[Hashable, float]:
        """Route-mode union with a *global* threshold.

        Windowed shards threshold against ``theta · window``, which is
        shard-independent, so their union is already the sharded set.
        Interval shards threshold against their *local* processed count
        — roughly ``1/S`` of the stream — so ``theta`` is rescaled per
        shard to make the local bar equal the global ``theta · n``
        (reusing each sketch's own scaling semantics, e.g. RHHH's ``V``
        multiplier).
        """
        self._sync_shards()
        out: Dict[Hashable, float] = {}
        total = self._updates
        for shard in self._shards:
            fn = getattr(shard, attr, None)
            if fn is None:
                fn = shard.heavy_hitters
            local_theta = theta
            if not self.windowed and self.num_shards > 1 and total:
                local = getattr(shard, "processed", None)
                if local is None:
                    local = getattr(shard, "packets", None)
                if local:
                    local_theta = theta * total / local
            out.update(fn(local_theta))
        return out

    def heavy_hitters(self, theta: float) -> Dict[Hashable, float]:
        """Heavy hitters across all shards.

        Under ``route`` the per-shard sets are disjoint and their union
        — thresholded against the global count (see :meth:`_route_heavy`)
        — is the sharded heavy-hitter set; under ``sum`` the merged
        snapshot enumerates them (window-aware for the Memento family).
        """
        if self.query_mode == "route" or self.num_shards == 1:
            return self._route_heavy(theta, "heavy_hitters")
        return self._sum_heavy_hitters(theta)

    def heavy_prefixes(self, theta: float) -> Dict[Hashable, float]:
        """Controller-facing alias (keys are prefixes in HHH mode)."""
        if self.query_mode == "route" or self.num_shards == 1:
            return self._route_heavy(theta, "heavy_prefixes")
        return self._sum_heavy_hitters(theta)

    def output(self, theta: float):
        """The heavy-hitter / HHH output set across all shards.

        When sum-mode shards expose the conditioned ``output`` surface
        (H-Memento), the HHH set is recomputed over the *merged*
        estimates: ``compute_hhh`` runs on the union of candidates with
        the summed upper/lower queries, the per-shard coverage slack
        growing as ``sqrt(S)`` (independent per-shard sampling noise adds
        in variance).  Everything else falls back to the plain
        heavy-hitter key set, which is what the single-sketch controller
        does for non-HHH algorithms.
        """
        self._sync_shards()
        if (
            self.query_mode == "sum"
            and self.num_shards > 1
            and getattr(self._shards[0], "output", None) is not None
            and getattr(self._shards[0], "hierarchy", None) is not None
        ):
            from ..hierarchy.hhh_output import compute_hhh

            first = self._shards[0]
            correction = 0.0
            sampling_correction = getattr(first, "sampling_correction", None)
            if sampling_correction is not None:
                correction = sampling_correction() * math.sqrt(
                    self.num_shards
                )
            return compute_hhh(
                first.hierarchy,
                list(self.candidates()),
                upper=self.query,
                lower=self.query_lower,
                threshold_count=theta * first.window,
                correction=correction,
            )
        single_output = (
            getattr(self._shards[0], "output", None)
            if self.num_shards == 1
            else None
        )
        if single_output is not None:
            return single_output(theta)
        return set(self.heavy_hitters(theta))

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def shards(self) -> Sequence:
        """The live shard sketches (read-only view; synced if resident)."""
        self._sync_shards()
        return tuple(self._shards)

    @property
    def updates(self) -> int:
        """Global packets ingested (including gap advances)."""
        return self._updates

    def state_snapshot(self) -> Dict[str, object]:
        """Serializable snapshot of the full ensemble state.

        Drains the pipeline and pulls any resident worker state back
        into the parent first, so the returned shards reflect every
        write accepted so far.  The shard sketches in the snapshot are
        the live objects, not copies — serialize (pickle) the snapshot
        before ingesting further, which is exactly what the checkpoint
        writer in :mod:`repro.service` does.
        """
        self._sync_shards()
        return {
            "shards": list(self._shards),
            "updates": self._updates,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`state_snapshot` as the current ensemble state.

        The pipeline and any resident workers are unwound first (via
        :meth:`close` — idempotent, so later writes restart/re-seed
        lazily), then the snapshot's shard sketches replace the current
        ones and the merge cache is invalidated.  The snapshot must come
        from a sketch with the same shard count.
        """
        shards = state["shards"]
        if len(shards) != self.num_shards:
            raise ValueError(
                f"snapshot has {len(shards)} shard(s), this sketch has "
                f"{self.num_shards}"
            )
        self.close()
        self._shards = list(shards)
        self._updates = int(state["updates"])
        self._version += 1
        self._merged_entries = None
        self._merged_view = None
        self._merge_version = -1

    def close(self) -> None:
        """Release the pipeline thread and the executor's workers.

        Safe to call mid-pipeline and idempotent: in-flight buffered
        writes are drained first, then resident shard state is pulled
        back into the parent, so queries keep working after close; a
        later write restarts the pipeline and re-seeds fresh workers
        lazily.  The thread and the workers are released even when the
        final drain/sync fails (poisoned pipeline or dead worker) — the
        failure propagates, but nothing leaks and the parent keeps its
        last synced state.
        """
        try:
            self._sync_shards()
        finally:
            if self._dispatcher is not None:
                self._dispatcher.close()
            self._shards_stale = False
            self._executor.close()
            self._resident = False

    def __enter__(self) -> "ShardedSketch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedSketch(shards={self.num_shards}, "
            f"mode={self.query_mode!r}, windowed={self.windowed}, "
            f"updates={self._updates})"
        )
