"""Pipelined ingestion front-end for :class:`~repro.sharding.sharded.ShardedSketch`.

Two pieces remove the remaining serialization on the sharded ingest
critical path:

* :class:`WriteBuffer` — a bounded, order-preserving coalescing buffer.
  Scalar ``update``/``ingest_sample`` calls and small report-scale
  batches (the netwide controller receives tens of samples per report)
  are appended to the current run and dispatched as one large batch once
  ``buffer_size`` items accumulate.  On a resident
  :class:`~repro.sharding.executors.PersistentProcessExecutor` this
  turns the former O(S)-pipe-messages-per-packet scalar path into
  O(S) messages per *buffer*, and on every executor it amortizes the
  per-dispatch partition/plan cost over thousands of packets.
  Consecutive same-kind writes coalesce into a single op (gap advances
  collapse into one count), so order across kinds is preserved exactly.
* :class:`PipelinedDispatcher` — a background partitioner thread fed by
  a bounded queue of coalesced ops.  The caller enqueues and returns;
  the thread partitions and submits.  On the persistent executor
  ``submit`` does not wait for the workers, but the pipe *send* blocks
  once the OS buffer fills — previously stalling the parent until the
  workers' pipes accepted batch *k* before it could partition batch
  *k+1*.  With the dispatcher, partitioning and the blocking sends run
  off the caller's thread (double-buffered up to ``depth`` batches), so
  the parent overlaps producing/partitioning batch *k+1* with the
  workers applying batch *k*.

Both are synchronized through a single ``drain`` point: the sharded
sketch's ``flush()`` pushes buffered writes into the queue and waits for
the thread to go idle, and every query path routes through it (via
``_sync_shards``), so pipelined ingestion stays result-identical to the
synchronous paths — sharded-over-exact still matches the unsharded
oracle, which the differential tests in ``tests/sharding/`` pin.

A failed dispatch poisons the pipeline exactly like a failed apply
poisons a resident worker: later ops are consumed but dropped (so
producers never deadlock on the bounded queue), and the first failure
surfaces — with the worker traceback — at the next ``drain``.
``close()`` is idempotent, safe with ops still in flight, and resets the
pipeline so a later write restarts it lazily.
"""

from __future__ import annotations

import queue
import threading
import traceback
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

__all__ = ["PipelineConfig", "make_pipeline_config", "WriteBuffer", "PipelinedDispatcher"]

#: Queue sentinel asking the dispatcher thread to exit.
_STOP = object()

#: Op-kind tag for window advances (items ops carry their method name).
GAP = "ingest_gap"


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the pipelined front-end.

    ``buffer_size`` is the write-coalescing threshold (items buffered
    before a dispatch is enqueued); ``depth`` bounds the in-flight
    batches between the caller and the partitioner thread (2 = classic
    double buffering: partition *k+1* while the workers apply *k*).
    """

    buffer_size: int = 4096
    depth: int = 2

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError(
                f"buffer_size must be positive, got {self.buffer_size}"
            )
        if self.depth <= 0:
            raise ValueError(f"depth must be positive, got {self.depth}")


def make_pipeline_config(spec: object) -> Optional[PipelineConfig]:
    """Resolve a ``ShardedSketch(pipeline=...)`` spec.

    ``None``/``False`` disable the front-end (the synchronous default);
    ``True`` enables it with default knobs; an ``int`` is a
    ``buffer_size``; a ready :class:`PipelineConfig` passes through; an
    object with ``to_config()`` (the engine layer's serializable
    ``PipelineSpec``) resolves through it — duck-typed so this module
    stays import-independent of :mod:`repro.engine`.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return PipelineConfig()
    if isinstance(spec, PipelineConfig):
        return spec
    if isinstance(spec, int):
        return PipelineConfig(buffer_size=spec)
    to_config = getattr(spec, "to_config", None)
    if to_config is not None:
        config = to_config()
        if isinstance(config, PipelineConfig):
            return config
    raise TypeError(
        f"pipeline must be None/False, True, a buffer size, a "
        f"PipelineConfig, or expose to_config() -> PipelineConfig, "
        f"got {spec!r}"
    )


class WriteBuffer:
    """Order-preserving coalescing buffer of ``(method, payload)`` ops.

    Payloads are item lists for ingestion methods and a plain count for
    :data:`GAP` advances.  Consecutive writes of the same kind extend
    the open op instead of appending a new one, so a scalar-update loop
    costs one growing list and gap runs collapse into one integer —
    the same run-length structure the ingest plans encode downstream.
    """

    __slots__ = ("capacity", "_ops", "_pending")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ops: List[Tuple[str, Union[List, int]]] = []
        self._pending = 0

    @property
    def pending(self) -> int:
        """Buffered item count (gap advances count one each)."""
        return self._pending

    def add_items(self, method: str, items: Sequence) -> bool:
        """Buffer ``items`` under ``method``; True when a flush is due."""
        ops = self._ops
        if ops and ops[-1][0] == method:
            ops[-1][1].extend(items)
        else:
            ops.append((method, list(items)))
        self._pending += len(items)
        return self._pending >= self.capacity

    def add_gap(self, count: int) -> bool:
        """Buffer a window advance; True when a flush is due."""
        ops = self._ops
        if ops and ops[-1][0] == GAP:
            ops[-1] = (GAP, ops[-1][1] + count)
        else:
            ops.append((GAP, count))
            self._pending += 1
        return self._pending >= self.capacity

    def drain(self) -> List[Tuple[str, Union[List, int]]]:
        """Pop and return all buffered ops (in write order)."""
        ops = self._ops
        self._ops = []
        self._pending = 0
        return ops


class PipelinedDispatcher:
    """Bounded-queue background dispatcher of coalesced ingestion ops.

    ``apply_items(items, method)`` and ``apply_gap(count)`` are the
    sharded sketch's synchronous dispatch entry points; the thread calls
    them one op at a time, in submission order, so the executor sees
    exactly the sequence a synchronous caller would have produced.
    """

    def __init__(
        self,
        apply_items: Callable[[Sequence, str], None],
        apply_gap: Callable[[int], None],
        depth: int = 2,
    ) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self._apply_items = apply_items
        self._apply_gap = apply_gap
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._thread: Optional[threading.Thread] = None
        self._failure: Optional[str] = None
        self._cause: Optional[BaseException] = None

    @property
    def alive(self) -> bool:
        """Whether the dispatcher thread is currently running."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def failed(self) -> bool:
        """Whether a dispatch has failed since the last :meth:`close`."""
        return self._failure is not None

    def _run(self) -> None:
        while True:
            op = self._queue.get()
            try:
                if op is _STOP:
                    return
                if self._failure is None:
                    method, payload = op
                    try:
                        if method == GAP:
                            self._apply_gap(payload)
                        else:
                            self._apply_items(payload, method)
                    except BaseException as exc:
                        # poison: keep consuming (and dropping) ops so
                        # producers blocked on the bounded queue advance,
                        # surface the first failure at the next drain
                        self._failure = traceback.format_exc()
                        self._cause = exc
            finally:
                self._queue.task_done()

    def submit(self, method: str, payload: Union[Sequence, int]) -> None:
        """Enqueue one coalesced op (blocks when ``depth`` are in flight)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="sharded-ingest-pipeline", daemon=True
            )
            self._thread.start()
        self._queue.put((method, payload))

    def drain(self) -> None:
        """Block until every submitted op was dispatched; raise on failure.

        The failure sticks until :meth:`close` resets the pipeline, so
        every later sync point keeps reporting the broken state instead
        of silently continuing on half-applied ingestion.
        """
        if self._thread is not None:
            self._queue.join()
        if self._failure is not None:
            raise RuntimeError(
                "pipelined ingestion failed:\n" + self._failure
            ) from self._cause

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop the thread and reset failure state (idempotent).

        Safe mid-pipeline: queued ops are dispatched (or dropped, once
        poisoned) before the stop sentinel is honored, so close never
        abandons a producer blocked on the queue.  ``timeout`` bounds
        the wait (the garbage-collection path — a wedged in-flight
        apply must not hang the collector): when it expires the daemon
        thread is abandoned instead of joined.
        """
        thread = self._thread
        if thread is not None and thread.is_alive():
            if timeout is None:
                self._queue.put(_STOP)
                thread.join()
            else:
                try:
                    self._queue.put_nowait(_STOP)
                except queue.Full:  # pragma: no cover - wedged pipeline
                    pass
                thread.join(timeout)
                if thread.is_alive():  # pragma: no cover - wedged pipeline
                    return
        self._thread = None
        self._failure = None
        self._cause = None

    def __del__(self):  # pragma: no cover - interpreter-teardown best effort
        try:
            self.close(timeout=1.0)
        except Exception:
            pass
