"""Sharded sliding-window ingestion: hash partitioning + merge-on-query.

Public surface:

* :class:`ShardedSketch` — hash-partitioned ensemble of any
  :class:`repro.core.api.SlidingSketch`, with global-window alignment
  for the Memento family and merge-on-query combining.
* :func:`shard_index` — the deterministic routing hash.
* Executors — :class:`SerialExecutor`, :class:`ThreadExecutor`,
  :class:`ProcessExecutor`, :class:`PersistentProcessExecutor`
  (resident shard workers; state never round-trips per batch), and
  :func:`make_executor`.
* Pipelined front-end — :class:`PipelineConfig` /
  ``ShardedSketch(pipeline=...)``: coalesced write buffering plus a
  background partitioner thread overlapping worker applies.
"""

from .executors import (
    PersistentProcessExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from .pipeline import PipelineConfig, make_pipeline_config
from .sharded import ShardedSketch, shard_index

__all__ = [
    "ShardedSketch",
    "shard_index",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PersistentProcessExecutor",
    "make_executor",
    "PipelineConfig",
    "make_pipeline_config",
]
