"""Network-wide measurement: points, transports, controllers, budgets."""

from .budget import BudgetModel, figure4_series
from .controller import AggregationController, SketchController
from .measurement_point import AggregatingPoint, SamplingPoint
from .messages import (
    PAYLOAD_SRC,
    PAYLOAD_SRC_DST,
    TCP_HEADER_OVERHEAD,
    AggregateReport,
    BatchReport,
)
from .simulation import NetwideConfig, NetwideSystem, run_error_experiment

__all__ = [
    "BudgetModel",
    "figure4_series",
    "AggregationController",
    "SketchController",
    "AggregatingPoint",
    "SamplingPoint",
    "AggregateReport",
    "BatchReport",
    "TCP_HEADER_OVERHEAD",
    "PAYLOAD_SRC",
    "PAYLOAD_SRC_DST",
    "NetwideConfig",
    "NetwideSystem",
    "run_error_experiment",
]
