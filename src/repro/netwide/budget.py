"""The network-wide error model of Theorem 5.5 and the optimal batch size.

Given a per-packet bandwidth budget ``B``, header overhead ``O``, sample
payload ``E``, ``m`` measurement points, window ``W``, hierarchy size ``H``
and confidence ``delta``, a batch size ``b`` yields the sampling rate
``tau = B·b / (O + E·b)`` and an overall guaranteed error of::

    E_b = m·(O + E·b)/B  +  sqrt( H · W · Z_{1−δ/2} · (O + E·b) / (B·b) )
          └── delay error ──┘   └────────── sampling error ──────────┘

The delay term grows with ``b`` (reports happen every ``b/τ`` packets per
point, so up to ``m·b/τ`` packets are unreported); the sampling term shrinks
with ``b`` (bigger batches waste fewer budget bytes on headers, buying a
higher ``tau``).  :meth:`BudgetModel.optimal_batch` solves the trade-off
numerically, reproducing the worked example of Section 5.2 (``b* = 44`` and
a ≈13K-packet bound at ``B = 1``; ``b* = 68`` / ≈5.3K at ``B = 5``).

The Sample method is the ``b = 1`` point of the same model, and Figure 4 is
three slices of it (Sample, Batch-100, optimal Batch) across budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from scipy.optimize import minimize_scalar

from ..analysis.error_model import z_quantile
from .messages import PAYLOAD_SRC, TCP_HEADER_OVERHEAD

__all__ = ["BudgetModel", "figure4_series"]


@dataclass(frozen=True)
class BudgetModel:
    """Theorem 5.5's error model for one deployment configuration.

    Parameters use the paper's symbols: ``points`` = m, ``header`` = O,
    ``payload`` = E, ``budget`` = B (bytes per measured packet), ``window``
    = W, ``hierarchy_size`` = H (1 for plain D-Memento), ``delta`` = δs.
    """

    points: int = 10
    header: int = TCP_HEADER_OVERHEAD
    payload: int = PAYLOAD_SRC
    budget: float = 1.0
    window: int = 1_000_000
    hierarchy_size: int = 5
    delta: float = 0.0001

    def __post_init__(self) -> None:
        if self.points <= 0:
            raise ValueError(f"points must be positive, got {self.points}")
        if self.header < 0 or self.payload <= 0:
            raise ValueError("header must be >= 0 and payload > 0")
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.hierarchy_size <= 0:
            raise ValueError(
                f"hierarchy_size must be positive, got {self.hierarchy_size}"
            )
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")

    # ------------------------------------------------------------------
    # model components
    # ------------------------------------------------------------------
    def message_bytes(self, batch: float) -> float:
        """Size of one report carrying ``batch`` samples: ``O + E·b``."""
        return self.header + self.payload * batch

    def tau(self, batch: float, clamp: bool = True) -> float:
        """Sampling rate exhausting the budget: ``B·b / (O + E·b)``.

        The paper's closed forms do not clamp ``tau`` at 1 (its own B = 5
        worked example has ``tau > 1``); pass ``clamp=False`` to match them
        exactly.  Simulations always clamp.
        """
        raw = self.budget * batch / self.message_bytes(batch)
        return min(1.0, raw) if clamp else raw

    def delay_error(self, batch: float) -> float:
        """Theorem 5.4 bound ``m·b/τ = m·(O + E·b)/B`` (packets)."""
        return self.points * self.message_bytes(batch) / self.budget

    def sampling_error(self, batch: float) -> float:
        """The ``W·eps_s = sqrt(H·W·Z·(O + E·b)/(B·b))`` term (packets)."""
        z = z_quantile(1.0 - self.delta / 2.0)
        return math.sqrt(
            self.hierarchy_size
            * self.window
            * z
            * self.message_bytes(batch)
            / (self.budget * batch)
        )

    def total_error(self, batch: float) -> float:
        """Theorem 5.5's overall bound ``E_b`` in packets."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return self.delay_error(batch) + self.sampling_error(batch)

    def relative_error(self, batch: float) -> float:
        """``E_b / W`` — the fraction-of-window form quoted in Section 5.2."""
        return self.total_error(batch) / self.window

    # ------------------------------------------------------------------
    # optimization
    # ------------------------------------------------------------------
    def optimal_batch(self, max_batch: int = 1_000_000) -> int:
        """The integer batch size minimizing :meth:`total_error`.

        Solved by bounded scalar minimization over the continuous
        relaxation followed by an integer neighbourhood check (the
        objective is unimodal: a convex delay term plus a decreasing-then-
        flat sampling term).
        """
        result = minimize_scalar(
            self.total_error, bounds=(1.0, float(max_batch)), method="bounded"
        )
        center = result.x
        candidates = {
            max(1, min(max_batch, int(math.floor(center)) + d))
            for d in (-1, 0, 1, 2)
        }
        return min(candidates, key=self.total_error)

    def summary(self, batch: Optional[int] = None) -> Dict[str, float]:
        """One row of the Figure 4 / Section 5.2 report for this config."""
        if batch is None:
            batch = self.optimal_batch()
        return {
            "budget": self.budget,
            "batch": float(batch),
            "tau": self.tau(batch),
            "delay_error": self.delay_error(batch),
            "sampling_error": self.sampling_error(batch),
            "total_error": self.total_error(batch),
            "relative_error": self.relative_error(batch),
        }


def figure4_series(
    budgets: Tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0),
    fixed_batch: int = 100,
    **model_kwargs,
) -> List[Dict[str, float]]:
    """Figure 4's three series across bandwidth budgets.

    For every budget ``B`` the row reports the guaranteed error of the
    Sample method (``b = 1``), the fixed Batch (``b = 100`` by default),
    and the optimal Batch, each split into its delay and sampling parts
    (the hatched vs solid areas of the figure).
    """
    rows: List[Dict[str, float]] = []
    for budget in budgets:
        model = BudgetModel(budget=budget, **model_kwargs)
        optimal = model.optimal_batch()
        row: Dict[str, float] = {"budget": budget, "optimal_batch": float(optimal)}
        for label, batch in (
            ("sample", 1),
            (f"batch{fixed_batch}", fixed_batch),
            ("batch_opt", optimal),
        ):
            row[f"{label}_delay"] = model.delay_error(batch)
            row[f"{label}_sampling"] = model.sampling_error(batch)
            row[f"{label}_total"] = model.total_error(batch)
        rows.append(row)
    return rows
