"""Client-side measurement points (the paper's load-balancer agents).

Each measurement point observes a share of the global packet stream and
reports to the controller under one of the three communication methods of
Section 4.3:

* :class:`SamplingPoint` — the **Sample** and **Batch** methods: sample
  packets with probability ``tau``, emit a report every ``batch_size``
  samples (``batch_size = 1`` is the Sample method).  Every report also
  carries how many packets it covers, so the controller can advance its
  window for the unsampled ones.
* :class:`AggregatingPoint` — the idealized **Aggregation** baseline: exact
  per-key counting with unlimited state and lossless merging.  A report
  (the full delta since the previous one) is emitted as soon as the
  accumulated bandwidth allowance (``B`` bytes per observed packet) pays
  for it — large messages therefore ship rarely, which is precisely the
  delay weakness the paper demonstrates.
"""

from __future__ import annotations

from itertools import compress
from typing import Dict, Hashable, List, Optional, Sequence

from ..core.sampling import draw_decisions, make_sampler
from ..hierarchy.domain import Hierarchy
from .messages import AggregateReport, BatchReport

__all__ = ["SamplingPoint", "AggregatingPoint"]


class SamplingPoint:
    """Sample/Batch measurement point.

    Parameters
    ----------
    point_id:
        Identifier carried in reports.
    tau:
        Packet sampling probability (derived from the budget via
        :meth:`repro.netwide.budget.BudgetModel.tau`).
    batch_size:
        Samples per report (``1`` = the paper's Sample method).
    header / payload:
        Byte-accounting constants ``O`` and ``E``.
    sampler / seed:
        Sampling implementation (see :mod:`repro.core.sampling`).
    """

    def __init__(
        self,
        point_id: int,
        tau: float,
        batch_size: int = 1,
        header: int = 64,
        payload: int = 4,
        sampler: object = "bernoulli",
        seed: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.point_id = int(point_id)
        self.tau = float(tau)
        self.batch_size = int(batch_size)
        self.header = int(header)
        self.payload = int(payload)
        if isinstance(sampler, str):
            # salted: see the matching note in repro.core.memento
            sampler_seed = None if seed is None else seed + 0x27D4EB2F
            self._sampler = make_sampler(self.tau, method=sampler, seed=sampler_seed)
        else:
            self._sampler = sampler
        self._samples: List[Hashable] = []
        self._covered = 0
        self.packets_seen = 0
        self.reports_sent = 0
        self.bytes_sent = 0

    def observe(self, packet: Hashable) -> Optional[BatchReport]:
        """Process one packet; return a report when the batch fills."""
        self.packets_seen += 1
        self._covered += 1
        if self._sampler.should_sample():
            self._samples.append(packet)
            if len(self._samples) == self.batch_size:
                return self._emit()
        return None

    def observe_many(self, packets: Sequence[Hashable]) -> List[BatchReport]:
        """Process a batch of packets; return every report that filled.

        State after ``observe_many(packets)`` is identical to calling
        :meth:`observe` per packet under the same seed: sampling decisions
        are pre-drawn in one block and only the sampled packets are
        touched individually.
        """
        if not isinstance(packets, (list, tuple)):
            packets = list(packets)
        n = len(packets)
        if n == 0:
            return []
        decisions = draw_decisions(self._sampler, n)
        reports: List[BatchReport] = []
        samples = self._samples
        batch_size = self.batch_size
        covered = self._covered
        consumed = 0  # batch packets already folded into ``covered``
        for i in compress(range(n), decisions):
            covered += i + 1 - consumed
            consumed = i + 1
            samples.append(packets[i])
            if len(samples) == batch_size:
                self._covered = covered
                reports.append(self._emit())
                samples = self._samples
                covered = 0
        self._covered = covered + (n - consumed)
        self.packets_seen += n
        return reports

    def _emit(self) -> BatchReport:
        size = self.header + self.payload * len(self._samples)
        report = BatchReport(
            point_id=self.point_id,
            samples=tuple(self._samples),
            covered=self._covered,
            size_bytes=size,
        )
        self._samples = []
        self._covered = 0
        self.reports_sent += 1
        self.bytes_sent += size
        return report

    @property
    def pending_samples(self) -> int:
        """Samples waiting for the batch to fill."""
        return len(self._samples)

    @property
    def pending_covered(self) -> int:
        """Packets observed since the last emitted report."""
        return self._covered


class AggregatingPoint:
    """Idealized aggregation point: exact delta counts, budget-paced sends.

    When a ``hierarchy`` is supplied every packet contributes all of its
    ``H`` generalizations to the delta (the point is conceptually running a
    full HHH algorithm whose entries are all transmitted); otherwise the
    packet key itself is counted.
    """

    def __init__(
        self,
        point_id: int,
        budget: float,
        header: int = 64,
        payload: int = 4,
        hierarchy: Optional[Hierarchy] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.point_id = int(point_id)
        self.budget = float(budget)
        self.header = int(header)
        self.payload = int(payload)
        self.hierarchy = hierarchy
        self.max_entries = max_entries
        self._entries: Dict[Hashable, int] = {}
        self._covered = 0
        self._allowance = 0.0
        self.packets_seen = 0
        self.reports_sent = 0
        self.bytes_sent = 0

    def observe(self, packet: Hashable) -> Optional[AggregateReport]:
        """Count one packet; emit the delta once the allowance covers it."""
        self.packets_seen += 1
        self._covered += 1
        self._allowance += self.budget
        entries = self._entries
        if self.hierarchy is None:
            entries[packet] = entries.get(packet, 0) + 1
        else:
            for prefix in self.hierarchy.all_prefixes(packet):
                entries[prefix] = entries.get(prefix, 0) + 1
        reported = len(entries)
        if self.max_entries is not None and reported > self.max_entries:
            reported = self.max_entries
        size = self.header + self.payload * reported
        if self._allowance >= size:
            return self._emit(size)
        return None

    def observe_many(self, packets: Sequence[Hashable]) -> List[AggregateReport]:
        """Batch counterpart of :meth:`observe` (uniform point interface).

        Aggregation accrues its byte allowance per packet and may emit at
        any arrival, so the loop stays scalar — this baseline is the slow
        path the paper argues against, not a hot path worth inlining.
        """
        observe = self.observe
        reports = []
        for packet in packets:
            report = observe(packet)
            if report is not None:
                reports.append(report)
        return reports

    def _emit(self, size: int) -> AggregateReport:
        entries = self._entries
        if self.max_entries is not None and len(entries) > self.max_entries:
            # a real HH algorithm holds a bounded number of counters; keep
            # the heaviest entries and drop the tail (still lossless at the
            # controller — the cap mirrors the paper's "all the entries of
            # its HH algorithm", not of an exact counter)
            kept = sorted(entries.items(), key=lambda kv: kv[1], reverse=True)
            entries = dict(kept[: self.max_entries])
        report = AggregateReport(
            point_id=self.point_id,
            entries=dict(entries),
            covered=self._covered,
            size_bytes=size,
        )
        self._entries = {}
        self._covered = 0
        self._allowance -= size
        self.reports_sent += 1
        self.bytes_sent += size
        return report

    @property
    def pending_entries(self) -> int:
        """Distinct keys accumulated since the last report."""
        return len(self._entries)

    @property
    def pending_covered(self) -> int:
        """Packets observed since the last emitted report."""
        return self._covered
