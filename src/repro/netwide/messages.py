"""Report messages between measurement points and the controller.

Section 5.2 models control traffic explicitly: every report is a standard
packet with at least ``O`` bytes of protocol headers (64 for TCP) carrying
``E`` bytes per reported sample (4 for a source IP, 8 for a source/
destination pair).  The per-packet bandwidth budget ``B`` caps how many
report bytes may be sent per *measured* packet.

Three report kinds mirror the paper's three communication methods:

* :class:`BatchReport` — ``b`` sampled packets plus the number of packets
  the report covers (``Sample`` is the ``b = 1`` case);
* :class:`AggregateReport` — a full snapshot delta of the point's counts
  (the idealized Aggregation baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

__all__ = [
    "TCP_HEADER_OVERHEAD",
    "PAYLOAD_SRC",
    "PAYLOAD_SRC_DST",
    "BatchReport",
    "AggregateReport",
]

#: The paper's ``O`` — minimal header size of the transmission protocol.
TCP_HEADER_OVERHEAD = 64
#: The paper's ``E`` for a source-IP sample.
PAYLOAD_SRC = 4
#: The paper's ``E`` for a (source, destination) sample.
PAYLOAD_SRC_DST = 8


@dataclass(frozen=True)
class BatchReport:
    """A batch of sampled packets (the Sample method when ``len == 1``).

    Attributes
    ----------
    point_id:
        Which measurement point sent the report.
    samples:
        The sampled packet keys, in arrival order.
    covered:
        How many packets the point processed since its previous report —
        the controller issues this many window movements in total.
    size_bytes:
        On-wire size: ``O + E * len(samples)``.
    """

    point_id: int
    samples: Tuple[Hashable, ...]
    covered: int
    size_bytes: int


@dataclass(frozen=True)
class AggregateReport:
    """A snapshot delta from an aggregating measurement point.

    ``entries`` maps keys (flows, or prefixes when a hierarchy is
    configured) to their exact counts since the point's previous report.
    """

    point_id: int
    entries: Dict[Hashable, int]
    covered: int
    size_bytes: int
