"""Controller-side algorithms: D-Memento, D-H-Memento, and Aggregation.

The controller forms the network-wide sliding window — the last ``W``
packets measured *anywhere* in the network (Section 4.3).  Two controller
types exist:

* :class:`SketchController` — the Sample/Batch path.  It hosts a Memento
  (D-Memento) or H-Memento (D-H-Memento) instance configured with the
  transport sampling rate ``tau``.  For every received report it performs a
  Full update per sampled packet and Window updates for the covered-but-
  unsampled remainder, exactly as Section 4.3 prescribes.
* :class:`AggregationController` — the idealized merge baseline: it retains
  every reported delta with its arrival time and answers queries by summing
  deltas that arrived within the last ``W`` global packets.  Space is
  unlimited and merging lossless, so all of its error comes from reporting
  delay — making it the strongest possible representative of aggregation
  techniques (Section 4.3: "thus, we conclusively demonstrate that they
  are superior to any aggregation technique").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Iterable, Optional, Set, Tuple

from ..hierarchy.domain import Hierarchy
from ..hierarchy.hhh_output import compute_hhh
from .messages import AggregateReport, BatchReport

__all__ = ["SketchController", "AggregationController"]


class SketchController:
    """D-Memento / D-H-Memento controller over Sample or Batch reports.

    Parameters
    ----------
    algorithm:
        A :class:`repro.core.memento.Memento` (D-Memento) or
        :class:`repro.core.h_memento.HMemento` (D-H-Memento) instance whose
        ``tau`` equals the transport sampling rate, so that its query-time
        scaling compensates for the points' sampling.
    """

    def __init__(self, algorithm) -> None:
        self.algorithm = algorithm
        self.reports_received = 0
        self.samples_ingested = 0
        self.packets_covered = 0

    def receive(self, report: BatchReport) -> None:
        """Apply one report: Full updates for samples, Window for the rest.

        The samples ride the sketch's batch ingestion path
        (``ingest_samples``), so a Batch-method report costs one hoisted
        block update rather than one call per sample.
        """
        samples = report.samples
        gap = report.covered - len(samples)
        if gap < 0:
            raise ValueError(
                f"malformed report: covers {report.covered} packets but "
                f"carries {len(samples)} samples"
            )
        algorithm = self.algorithm
        if len(samples) == 1:
            algorithm.ingest_sample(samples[0])
        elif samples:
            algorithm.ingest_samples(samples)
        if gap > 0:
            algorithm.ingest_gap(gap)
        self.reports_received += 1
        self.samples_ingested += len(samples)
        self.packets_covered += report.covered

    def receive_many(self, reports) -> None:
        """Apply a sequence of reports in arrival order."""
        receive = self.receive
        for report in reports:
            receive(report)

    def query(self, key: Hashable) -> float:
        """Network-wide window frequency estimate for ``key``."""
        return self.algorithm.query(key)

    def query_point(self, key: Hashable) -> float:
        """Midpoint (bias-removed) estimate for error metrics / detection."""
        return self.algorithm.query_point(key)

    def candidates(self):
        """Keys/prefixes the controller sketch currently tracks."""
        return self.algorithm.candidates()

    def output(self, theta: float) -> Set:
        """HHH set (D-H-Memento) or heavy-hitter set keys (D-Memento)."""
        output = getattr(self.algorithm, "output", None)
        if output is not None:
            return output(theta)
        return set(self.algorithm.heavy_hitters(theta))

    def heavy_prefixes(self, theta: float) -> Dict[Hashable, float]:
        """Keys/prefixes whose plain frequency estimate exceeds ``theta·W``.

        This is the detection rule of the mitigation application
        (Section 6.3: "a subnet is rate-limited if its window frequency is
        above the threshold") — no conditioning, no coverage slack.
        """
        heavy_prefixes = getattr(self.algorithm, "heavy_prefixes", None)
        if heavy_prefixes is not None:
            return heavy_prefixes(theta)
        return self.algorithm.heavy_hitters(theta)

    def close(self) -> None:
        """Release the hosted algorithm's resources (idempotent).

        A sharded algorithm holds executor workers and possibly a
        pipeline thread; plain sketches have no ``close`` and nothing to
        release.  The controller owns the sketch it hosts, so system
        teardown routes through here.
        """
        close = getattr(self.algorithm, "close", None)
        if close is not None:
            close()


class AggregationController:
    """Idealized aggregation: lossless merge of exact deltas, delay-limited.

    Parameters
    ----------
    window:
        The network-wide window size ``W``.
    hierarchy:
        When present, reports carry per-prefix entries and :meth:`output`
        computes an HHH set; otherwise plain flow counts / heavy hitters.
    """

    def __init__(self, window: int, hierarchy: Optional[Hierarchy] = None) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = int(window)
        self.hierarchy = hierarchy
        # (arrival_time, entries) with arrival_time = global packet index
        self._reports: Deque[Tuple[int, Dict[Hashable, int]]] = deque()
        self._totals: Dict[Hashable, int] = {}
        self.reports_received = 0

    def receive(self, report: AggregateReport, now: int) -> None:
        """Merge one delta report that arrived at global packet ``now``."""
        self._reports.append((now, report.entries))
        totals = self._totals
        for key, count in report.entries.items():
            totals[key] = totals.get(key, 0) + count
        self.reports_received += 1
        self._evict(now)

    def advance(self, now: int) -> None:
        """Inform the controller of global time so stale reports expire."""
        self._evict(now)

    def _evict(self, now: int) -> None:
        horizon = now - self.window
        reports = self._reports
        totals = self._totals
        while reports and reports[0][0] <= horizon:
            _, entries = reports.popleft()
            for key, count in entries.items():
                remaining = totals[key] - count
                if remaining:
                    totals[key] = remaining
                else:
                    del totals[key]

    def query(self, key: Hashable) -> float:
        """Sum of retained delta counts for ``key``."""
        return float(self._totals.get(key, 0))

    def query_point(self, key: Hashable) -> float:
        """Same as :meth:`query` — aggregated counts carry no shift."""
        return float(self._totals.get(key, 0))

    def candidates(self) -> Iterable[Hashable]:
        """All keys present in retained reports."""
        return self._totals.keys()

    def heavy_hitters(self, theta: float) -> Dict[Hashable, float]:
        """Keys whose retained count exceeds ``theta * W``."""
        bar = theta * self.window
        return {k: float(v) for k, v in self._totals.items() if v > bar}

    def heavy_prefixes(self, theta: float) -> Dict[Hashable, float]:
        """Alias of :meth:`heavy_hitters` (keys are prefixes in HHH mode)."""
        return self.heavy_hitters(theta)

    def output(self, theta: float) -> Set:
        """HHH set over the retained counts (requires a hierarchy)."""
        if self.hierarchy is None:
            return set(self.heavy_hitters(theta))
        return compute_hhh(
            self.hierarchy,
            list(self._totals.keys()),
            upper=self.query,
            lower=self.query,
            threshold_count=theta * self.window,
            correction=0.0,
        )

    def close(self) -> None:
        """Nothing to release (uniform controller lifecycle surface)."""

    @property
    def retained_reports(self) -> int:
        """Reports currently inside the window horizon."""
        return len(self._reports)
