"""End-to-end network-wide measurement simulation (Figures 9 and 10 core).

Ties together the pieces of :mod:`repro.netwide`: a global packet stream is
split across ``m`` measurement points (round-robin, uniform-random, or
weighted — the theory's concern about slow points is reproducible with
skewed weights); points emit reports under their communication method; the
controller ingests them; and an exact OPT oracle tracks the true
network-wide window for error measurement.

The paper's Figure 9 measures the controller's on-arrival estimation error
under a fixed byte budget for the three methods; Figure 10 runs the same
pipeline under an HTTP flood and measures detection latency (see
:mod:`repro.loadbalancer.mitigation` for the mitigation loop).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, Hashable, Optional, Sequence

import numpy as np

from ..analysis.metrics import RunningRMSE
from ..core.exact import ExactWindowCounter
from ..engine.facade import build_engine
from ..engine.spec import (
    AlgorithmSpec,
    ShardingSpec,
    SketchSpec,
    hierarchy_spec_for,
    pipeline_spec_for,
)
from ..hierarchy.domain import Hierarchy
from .budget import BudgetModel
from .controller import AggregationController, SketchController
from .measurement_point import AggregatingPoint, SamplingPoint

__all__ = ["NetwideConfig", "NetwideSystem", "run_error_experiment"]

METHODS = ("sample", "batch", "aggregate")


@dataclass(frozen=True)
class NetwideConfig:
    """Configuration of one network-wide deployment.

    ``method`` selects the communication scheme; ``batch_size=None`` asks
    the Theorem 5.5 optimizer for the best batch under the byte budget.
    ``hierarchy`` switches the controller from D-Memento to D-H-Memento.

    ``spec`` declares the controller's execution strategy (sharding /
    executor / pipeline sections of a :class:`repro.engine.SketchSpec`);
    its algorithm section serves as a template whose family, window,
    counters, tau, seed, and delta are **resolved** by
    :class:`NetwideSystem` from this config and the budget model (the
    transport sampling rate is a Theorem 5.5 output, not a spec input).
    The legacy ``shards`` / ``shard_executor`` / ``shard_pipeline``
    fields are deprecation shims that synthesize a spec; when ``spec``
    is given they are back-filled *from* it so introspection stays
    coherent.
    """

    points: int = 10
    method: str = "batch"
    budget: float = 1.0
    window: int = 1_000_000
    header: int = 64
    payload: int = 4
    batch_size: Optional[int] = None
    counters: int = 512
    hierarchy: Optional[Hierarchy] = None
    delta: float = 0.001
    seed: Optional[int] = None
    #: Entry cap for aggregation reports ("all the entries of its HH
    #: algorithm"); defaults to ``counters`` when None.
    aggregate_max_entries: Optional[int] = None
    #: DEPRECATED (use ``spec``): controller-side ingestion shards
    #: (1 = the single-sketch path).  ``counters`` is split across
    #: shards so total state stays constant.
    shards: int = 1
    #: DEPRECATED (use ``spec``): executor for the sharded controller:
    #: serial / thread / process / persistent.
    shard_executor: str = "serial"
    #: DEPRECATED (use ``spec``): pipelined ingestion front-end for the
    #: sharded controller — ``False``, ``True``, or a buffer size.
    shard_pipeline: object = False
    #: The controller's declarative execution spec (see class docstring).
    spec: Optional[SketchSpec] = None

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(
                f"method must be one of {METHODS}, got {self.method!r}"
            )
        if self.points <= 0:
            raise ValueError(f"points must be positive, got {self.points}")
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        legacy_given = (
            self.shards > 1
            or self.shard_executor != "serial"
            or self.shard_pipeline not in (False, None)
        )
        if self.spec is not None:
            if legacy_given:
                raise ValueError(
                    "pass either spec= or the legacy shards/shard_executor/"
                    "shard_pipeline knobs, not both — mixing them would "
                    "silently discard one side"
                )
            # the spec is authoritative; back-fill the legacy fields so
            # code (and result rows) reading config.shards stay coherent
            sharding = self.spec.sharding
            object.__setattr__(
                self, "shards", sharding.shards if sharding else 1
            )
            object.__setattr__(
                self,
                "shard_executor",
                sharding.executor if sharding else "serial",
            )
            object.__setattr__(
                self, "shard_pipeline", self.spec.pipeline is not None
            )
            return
        if legacy_given:
            warnings.warn(
                "NetwideConfig(shards=/shard_executor=/shard_pipeline=) is "
                "deprecated; pass spec=SketchSpec(..., sharding=..., "
                "pipeline=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        object.__setattr__(self, "spec", self._synthesize_spec())

    def _synthesize_spec(self) -> SketchSpec:
        """A spec equivalent to the legacy shard knobs.

        Mirrors the historical wiring exactly: the sharding and pipeline
        sections appear only when ``shards > 1`` (a 1-shard config always
        built the plain sketch, silently ignoring executor/pipeline), and
        the algorithm template carries the config's window/counters/seed
        with tau left for the budget-model resolution.
        """
        sharded = self.shards > 1
        return SketchSpec(
            algorithm=AlgorithmSpec(
                family="h_memento" if self.hierarchy is not None else "memento",
                window=self.window,
                counters=self.counters,
                seed=self.seed,
                delta=self.delta,
            ),
            hierarchy=hierarchy_spec_for(self.hierarchy),
            sharding=(
                ShardingSpec(shards=self.shards, executor=self.shard_executor)
                if sharded
                else None
            ),
            pipeline=(
                pipeline_spec_for(self.shard_pipeline) if sharded else None
            ),
        )


class NetwideSystem:
    """A wired-up network-wide measurement deployment."""

    def __init__(self, config: NetwideConfig) -> None:
        self.config = config
        hierarchy_size = (
            config.hierarchy.num_patterns if config.hierarchy is not None else 1
        )
        self.model = BudgetModel(
            points=config.points,
            header=config.header,
            payload=config.payload,
            budget=config.budget,
            window=config.window,
            hierarchy_size=hierarchy_size,
            delta=config.delta,
        )
        self.now = 0

        if config.method == "aggregate":
            self.points = [
                AggregatingPoint(
                    point_id=i,
                    budget=config.budget,
                    header=config.header,
                    payload=config.payload,
                    hierarchy=config.hierarchy,
                    # each point "transmits all the entries of its HH
                    # algorithm" — bounded by a counter budget
                    max_entries=(
                        config.aggregate_max_entries
                        if config.aggregate_max_entries is not None
                        else config.counters
                    ),
                )
                for i in range(config.points)
            ]
            self.controller = AggregationController(
                window=config.window, hierarchy=config.hierarchy
            )
            self.batch_size = 0
            self.tau = 1.0
            # the aggregation controller retains exact deltas; there is
            # no sketch to describe declaratively
            self.resolved_spec = None
            return

        batch = 1 if config.method == "sample" else (
            config.batch_size
            if config.batch_size is not None
            else self.model.optimal_batch()
        )
        self.batch_size = batch
        self.tau = self.model.tau(batch, clamp=True)
        seed = config.seed
        self.points = [
            SamplingPoint(
                point_id=i,
                tau=self.tau,
                batch_size=batch,
                header=config.header,
                payload=config.payload,
                seed=None if seed is None else seed + i,
            )
            for i in range(config.points)
        ]
        #: the fully-resolved controller spec: the config template with
        #: family/window/counters/tau/seed/delta pinned.  Recording this
        #: next to a result row makes the controller reproducible from
        #: the spec alone (``build_engine(spec)``).
        self.resolved_spec = self._resolve_controller_spec(
            config, min(1.0, self.tau)
        )
        self.controller = SketchController(
            build_engine(self.resolved_spec, hierarchy=config.hierarchy)
        )

    @staticmethod
    def _resolve_controller_spec(
        config: NetwideConfig, tau: float
    ) -> SketchSpec:
        """Pin the algorithm section of the config's spec template.

        The family follows the deployment mode (D-Memento or
        D-H-Memento), the counter budget is split across shards so total
        controller state matches the single-sketch deployment, and
        ``tau`` is the budget model's transport sampling rate.  The
        spec's sharding/pipeline sections and the sampler choice pass
        through untouched.
        """
        spec = config.spec
        shards = spec.sharding.shards if spec.sharding is not None else 1
        counters = (
            config.counters
            if shards == 1
            else max(1, config.counters // shards)
        )
        algorithm = replace(
            spec.algorithm,
            family="h_memento" if config.hierarchy is not None else "memento",
            window=config.window,
            counters=counters,
            epsilon=None,
            tau=tau,
            seed=config.seed,
            delta=config.delta,
        )
        return replace(
            spec,
            algorithm=algorithm,
            hierarchy=hierarchy_spec_for(config.hierarchy),
        )

    # ------------------------------------------------------------------
    def offer(self, point_index: int, packet: Hashable) -> bool:
        """Deliver one packet to a specific measurement point.

        Returns True when the observation triggered a report to the
        controller (useful to hook mitigation logic on report arrivals).
        """
        self.now += 1
        report = self.points[point_index].observe(packet)
        if report is None:
            if self.config.method == "aggregate":
                self.controller.advance(self.now)
            return False
        if self.config.method == "aggregate":
            self.controller.receive(report, self.now)
        else:
            self.controller.receive(report)
        return True

    def offer_many(self, point_index: int, packets: Sequence[Hashable]) -> int:
        """Deliver a batch of packets to one measurement point.

        Returns the number of reports the batch triggered.  For the
        Sample/Batch methods this rides the point's block-sampled
        ``observe_many`` and the controller's batch ingestion; the
        aggregate method needs per-packet arrival times for report
        expiry, so it falls back to scalar delivery.
        """
        if self.config.method == "aggregate":
            triggered = 0
            offer = self.offer
            for packet in packets:
                if offer(point_index, packet):
                    triggered += 1
            return triggered
        if not isinstance(packets, (list, tuple)):
            packets = list(packets)
        self.now += len(packets)
        reports = self.points[point_index].observe_many(packets)
        self.controller.receive_many(reports)
        return len(reports)

    def query(self, key: Hashable) -> float:
        """Controller-side network-wide window frequency estimate."""
        return self.controller.query(key)

    def output(self, theta: float):
        """Controller-side heavy hitter / HHH set."""
        return self.controller.output(theta)

    def heavy_prefixes(self, theta: float):
        """Controller-side plain-frequency heavy keys (detection rule)."""
        return self.controller.heavy_prefixes(theta)

    def query_point(self, key: Hashable) -> float:
        """Midpoint estimate (bias-removed) for error metrics/detection."""
        return self.controller.query_point(key)

    def detected_subnets(self, theta: float, subnet_bits: int = 8) -> set:
        """Subnets whose midpoint window-frequency estimate exceeds θ·W.

        This is the detection rule of the Section 6.3 mitigation
        application, evaluated over the prefixes the controller currently
        tracks.  Requires a hierarchy-enabled deployment.
        """
        if self.config.hierarchy is None:
            raise ValueError("detected_subnets needs a hierarchy-enabled system")
        bar = theta * self.config.window
        out = set()
        for prefix in self.controller.candidates():
            if prefix[1] == subnet_bits and self.query_point(prefix) > bar:
                out.add(prefix)
        return out

    def close(self) -> None:
        """Release controller-side resources (idempotent).

        A sharded controller may hold executor worker processes
        (``shard_executor="process"``/``"persistent"``) and a pipeline
        thread; without an explicit teardown every simulated point in a
        fig9 sweep leaks them.  The simulation owns the controller it
        built, so it owns the ``close()`` — callers that construct a
        :class:`NetwideSystem` directly should use it as a context
        manager or call :meth:`close` when done.
        """
        self.controller.close()

    def __enter__(self) -> "NetwideSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def bytes_sent(self) -> int:
        """Total report bytes shipped by all points."""
        return sum(p.bytes_sent for p in self.points)

    @property
    def reports_sent(self) -> int:
        """Total reports shipped by all points."""
        return sum(p.reports_sent for p in self.points)


def _assignment_iter(
    count: int,
    points: int,
    policy: str,
    weights: Optional[Sequence[float]],
    seed: Optional[int],
):
    """Yield the measurement-point index for each of ``count`` packets."""
    if policy == "round_robin":
        for i in range(count):
            yield i % points
        return
    rng = np.random.default_rng(seed)
    if policy == "uniform":
        for idx in rng.integers(0, points, size=count):
            yield int(idx)
        return
    if policy == "weighted":
        if weights is None or len(weights) != points:
            raise ValueError("weighted policy needs one weight per point")
        probs = np.asarray(weights, dtype=float)
        probs = probs / probs.sum()
        for idx in rng.choice(points, size=count, p=probs):
            yield int(idx)
        return
    raise ValueError(f"unknown assignment policy {policy!r}")


def run_error_experiment(
    config: NetwideConfig,
    stream: Sequence[Hashable],
    query_keys: Optional[Callable[[Hashable], Sequence[Hashable]]] = None,
    stride: int = 100,
    warmup: Optional[int] = None,
    assignment: str = "round_robin",
    weights: Optional[Sequence[float]] = None,
) -> Dict[str, float]:
    """Measure the controller's on-arrival error against the OPT oracle.

    ``query_keys(packet)`` maps an arriving packet to the keys whose
    frequencies are compared (defaults to the packet key itself; the HHH
    experiments pass the packet's prefixes).  Error is sampled every
    ``stride`` packets after ``warmup`` (default: one window).

    Returns a summary with the RMSE, byte accounting, and the effective
    transport parameters (tau, batch size).
    """
    window = config.window
    if warmup is None:
        warmup = min(window, len(stream) // 4)

    if query_keys is None:
        query_keys = lambda packet: (packet,)  # noqa: E731 - tiny adapter

    oracle = ExactWindowCounter(window)
    use_hierarchy = config.hierarchy is not None
    if use_hierarchy:
        oracles = [
            ExactWindowCounter(window)
            for _ in range(config.hierarchy.num_patterns)
        ]

    acc = RunningRMSE()
    # the system owns executor workers/pipeline threads when the
    # controller is sharded — tear them down even on a mid-run failure
    with NetwideSystem(config) as system:
        for t, (packet, point) in enumerate(
            zip(
                stream,
                _assignment_iter(
                    len(stream), config.points, assignment, weights, config.seed
                ),
            )
        ):
            system.offer(point, packet)
            keys = query_keys(packet)
            if use_hierarchy:
                for idx, key in enumerate(keys):
                    oracles[idx].update(key)
            else:
                oracle.update(packet)
            if t >= warmup and t % stride == 0:
                if use_hierarchy:
                    for idx, key in enumerate(keys):
                        acc.add(oracles[idx].query(key), system.query_point(key))
                else:
                    for key in keys:
                        acc.add(oracle.query(key), system.query_point(key))

        summary = {
            "method": config.method,
            "rmse": acc.rmse,
            "observations": float(acc.count),
            "bytes_sent": float(system.bytes_sent),
            "reports_sent": float(system.reports_sent),
            "bytes_per_packet": system.bytes_sent / max(1, len(stream)),
            "tau": system.tau,
            "batch_size": float(system.batch_size),
            "shards": float(config.shards),
        }
        if system.resolved_spec is not None:
            # the row is reproducible from this alone: build_engine(spec)
            # is the controller, byte-identical under the recorded seed
            summary["spec"] = system.resolved_spec.to_dict()
    return summary
