"""Synthetic packet traces standing in for the paper's proprietary traces.

The paper evaluates on three real traces — a CAIDA backbone link, a
university datacenter, and an edge router — none of which are
redistributable.  Following DESIGN.md §4, this module generates seeded
synthetic equivalents whose two operative characteristics match what the
paper relies on:

* the **flow-size skew** (a bounded Zipf over the flow population):
  the paper observes that Memento tolerates lower sampling rates on the
  heavy-tailed Backbone trace and degrades first on the skewed Datacenter
  trace, so each profile pins a different Zipf exponent;
* the **hierarchy mass profile**: addresses are allocated with skewed
  per-octet popularity, so a handful of /8 and /16 subnets carry a large
  share of traffic — giving the HHH experiments meaningful aggregates.

Profiles (see :data:`BACKBONE`, :data:`DATACENTER`, :data:`EDGE`) control
the flow population size, the Zipf exponent, and the per-octet skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .packet import Packet

__all__ = [
    "TraceProfile",
    "Trace",
    "generate_trace",
    "BACKBONE",
    "DATACENTER",
    "EDGE",
    "PROFILES",
]


@dataclass(frozen=True)
class TraceProfile:
    """Knobs describing a synthetic trace family.

    Attributes
    ----------
    name:
        Profile label (appears in benches and EXPERIMENTS.md).
    flows:
        Size of the flow population.
    zipf_alpha:
        Exponent of the bounded-Zipf flow popularity (higher = more skew;
        a handful of flows dominate).
    octet_alpha:
        Skew of the per-octet address allocation (higher = fewer popular
        subnets carrying more traffic).
    """

    name: str
    flows: int
    zipf_alpha: float
    octet_alpha: float


#: CAIDA-like: heavy-tailed, large flow population.
BACKBONE = TraceProfile("backbone", flows=40_000, zipf_alpha=1.05, octet_alpha=0.7)
#: University-datacenter-like: strongly skewed, small hot set.
DATACENTER = TraceProfile("datacenter", flows=6_000, zipf_alpha=1.5, octet_alpha=1.0)
#: Edge-router-like: moderate skew.
EDGE = TraceProfile("edge", flows=20_000, zipf_alpha=0.85, octet_alpha=0.6)

PROFILES = {p.name: p for p in (BACKBONE, DATACENTER, EDGE)}


@dataclass
class Trace:
    """A generated packet trace (parallel src/dst arrays).

    ``src``/``dst`` are plain Python int lists so the algorithms' hot loops
    avoid per-item numpy unboxing.
    """

    name: str
    seed: Optional[int]
    src: List[int]
    dst: List[int]

    def __len__(self) -> int:
        return len(self.src)

    def packets_1d(self) -> List[int]:
        """The stream of 1-D flow keys (source addresses)."""
        return self.src

    def packets_2d(self) -> List[Tuple[int, int]]:
        """The stream of 2-D flow keys (source, destination pairs)."""
        return list(zip(self.src, self.dst))

    def packets(self) -> List[Packet]:
        """The stream as rich :class:`~repro.traffic.packet.Packet` records."""
        return [Packet(src=s, dst=d) for s, d in zip(self.src, self.dst)]


def _zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized bounded-Zipf probabilities over ``n`` ranks."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def _skewed_octets(
    rng: np.random.Generator, count: int, alpha: float
) -> np.ndarray:
    """Draw ``count`` octet values with Zipf-skewed, permuted popularity.

    The permutation decouples *which* octet values are popular from their
    numeric rank, so e.g. the busiest /8 isn't always ``1.*``.
    """
    probs = _zipf_weights(256, alpha)
    perm = rng.permutation(256)
    draws = rng.choice(256, size=count, p=probs)
    return perm[draws]


def _flow_addresses(
    rng: np.random.Generator, flows: int, octet_alpha: float
) -> np.ndarray:
    """Assign each flow a 32-bit address with hierarchical subnet skew."""
    address = np.zeros(flows, dtype=np.int64)
    for _ in range(4):
        address = (address << 8) | _skewed_octets(rng, flows, octet_alpha)
    return address


def generate_trace(
    profile: TraceProfile,
    length: int,
    seed: Optional[int] = None,
) -> Trace:
    """Generate a ``length``-packet trace under ``profile``.

    The generation is fully vectorized: flow popularity ranks are drawn by
    inverse-CDF lookup against the bounded-Zipf cumulative distribution,
    then mapped through per-flow (src, dst) address tables.

    Examples
    --------
    >>> trace = generate_trace(DATACENTER, length=1000, seed=42)
    >>> len(trace)
    1000
    >>> generate_trace(DATACENTER, 1000, seed=42).src == trace.src  # seeded
    True
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    rng = np.random.default_rng(seed)

    flow_probs = _zipf_weights(profile.flows, profile.zipf_alpha)
    cdf = np.cumsum(flow_probs)
    cdf[-1] = 1.0  # guard floating-point shortfall
    flow_ids = np.searchsorted(cdf, rng.random(length), side="right")

    src_table = _flow_addresses(rng, profile.flows, profile.octet_alpha)
    dst_table = _flow_addresses(rng, profile.flows, profile.octet_alpha)

    src = src_table[flow_ids]
    dst = dst_table[flow_ids]
    return Trace(
        name=profile.name,
        seed=seed,
        src=[int(x) for x in src],
        dst=[int(x) for x in dst],
    )
