"""Trace persistence — save/load generated traces for repeatable experiments.

Two formats are supported:

* **npz** (default) — compact binary via numpy, preserving src/dst arrays,
  attack labels, and metadata; the benches cache generated traces this way
  so repeated runs see identical inputs.
* **csv** — one packet per line (``src,dst,is_attack``), interoperable with
  external tooling.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

import numpy as np

from .flood import FloodSpec, FloodTrace
from .synth import Trace

__all__ = ["save_trace", "load_trace", "export_csv", "import_csv"]

PathLike = Union[str, Path]


def save_trace(trace: Union[Trace, FloodTrace], path: PathLike) -> None:
    """Serialize a trace (plain or flood-augmented) to an ``.npz`` file."""
    path = Path(path)
    if isinstance(trace, FloodTrace):
        meta = {
            "kind": "flood",
            "start_index": trace.start_index,
            "subnets": [[ip, length] for ip, length in trace.subnets],
            "spec": {
                "num_subnets": trace.spec.num_subnets,
                "share": trace.spec.share,
                "subnet_bits": trace.spec.subnet_bits,
            },
        }
        np.savez_compressed(
            path,
            src=np.asarray(trace.src, dtype=np.int64),
            dst=np.asarray(trace.dst, dtype=np.int64),
            is_attack=np.asarray(trace.is_attack, dtype=bool),
            meta=json.dumps(meta),
        )
        return
    meta = {"kind": "plain", "name": trace.name, "seed": trace.seed}
    np.savez_compressed(
        path,
        src=np.asarray(trace.src, dtype=np.int64),
        dst=np.asarray(trace.dst, dtype=np.int64),
        meta=json.dumps(meta),
    )


def load_trace(path: PathLike) -> Union[Trace, FloodTrace]:
    """Load a trace saved by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        src = [int(x) for x in data["src"]]
        dst = [int(x) for x in data["dst"]]
        if meta["kind"] == "flood":
            spec = FloodSpec(**meta["spec"])
            return FloodTrace(
                src=src,
                dst=dst,
                is_attack=[bool(x) for x in data["is_attack"]],
                subnets=[(int(ip), int(length)) for ip, length in meta["subnets"]],
                start_index=int(meta["start_index"]),
                spec=spec,
            )
        return Trace(name=meta["name"], seed=meta["seed"], src=src, dst=dst)


def export_csv(trace: Union[Trace, FloodTrace], path: PathLike) -> None:
    """Write ``src,dst,is_attack`` rows (attack column 0 for plain traces)."""
    path = Path(path)
    flags = trace.is_attack if isinstance(trace, FloodTrace) else [False] * len(trace.src)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["src", "dst", "is_attack"])
        for s, d, a in zip(trace.src, trace.dst, flags):
            writer.writerow([s, d, int(a)])


def import_csv(path: PathLike, name: str = "imported") -> Trace:
    """Read a CSV written by :func:`export_csv` back into a plain trace."""
    path = Path(path)
    src: List[int] = []
    dst: List[int] = []
    with path.open() as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            src.append(int(row["src"]))
            dst.append(int(row["dst"]))
    return Trace(name=name, seed=None, src=src, dst=dst)
