"""HTTP-flood injection (the attack scenario of Section 6.4).

The paper's flood experiment overlays an attack on the Backbone trace:

1. pick 50 subnets by choosing random 8 bits for each;
2. pick a random start line in ``(0, 10^6)``; the trace is unmodified up
   to it;
3. from the start line on, each emitted line is — with probability 0.7 — a
   flood request from a uniformly-picked flooding subnet, and with
   probability 0.3 the next line of the original trace.

So once the flood begins the attacking subnets account for 70% of traffic
(1.4% each with 50 subnets).  :func:`inject_flood` reproduces this process
and records ground truth (which packets are attack, which subnets flood)
for the detection-latency and missed-request metrics of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..hierarchy.prefix import make_prefix

__all__ = ["FloodSpec", "FloodTrace", "inject_flood"]

Prefix1D = Tuple[int, int]


@dataclass(frozen=True)
class FloodSpec:
    """Parameters of the injected flood (defaults = the paper's Section 6.4)."""

    num_subnets: int = 50
    share: float = 0.7
    subnet_bits: int = 8

    def __post_init__(self) -> None:
        if self.num_subnets <= 0:
            raise ValueError(f"num_subnets must be positive, got {self.num_subnets}")
        if not 0.0 < self.share < 1.0:
            raise ValueError(f"share must be in (0, 1), got {self.share}")
        if self.subnet_bits not in (8, 16, 24):
            raise ValueError(f"subnet_bits must be 8/16/24, got {self.subnet_bits}")


@dataclass
class FloodTrace:
    """A flood-augmented trace plus ground truth for evaluation."""

    src: List[int]
    dst: List[int]
    is_attack: List[bool]
    subnets: List[Prefix1D]
    start_index: int
    spec: FloodSpec

    def __len__(self) -> int:
        return len(self.src)

    @property
    def attack_packets(self) -> int:
        """Total packets labelled as attack."""
        return sum(self.is_attack)

    def subnet_set(self) -> Set[Prefix1D]:
        """The flooding subnets as a set of 1-D prefixes."""
        return set(self.subnets)


def inject_flood(
    base_src: Sequence[int],
    base_dst: Optional[Sequence[int]] = None,
    spec: FloodSpec = FloodSpec(),
    seed: Optional[int] = None,
    start_index: Optional[int] = None,
) -> FloodTrace:
    """Overlay a flood on a base trace per the paper's §6.4 procedure.

    Parameters
    ----------
    base_src / base_dst:
        The original trace (dst defaults to zeros for 1-D experiments).
    spec:
        Flood parameters (50 subnets at 70% share by default).
    seed:
        Seed for subnet selection, start line, and per-line coin flips.
    start_index:
        Explicit flood start (otherwise uniform in ``(0, len(base)/2)`` so a
        meaningful post-flood tail remains — the paper draws from
        ``(0, 10^6)`` of a longer trace).

    Returns
    -------
    FloodTrace
        Combined trace; generation stops when the base trace is consumed,
        as in the paper ("with probability 0.3 we skip to the next line of
        the original trace").
    """
    if base_dst is not None and len(base_dst) != len(base_src):
        raise ValueError("base_src and base_dst must have equal length")
    if not base_src:
        raise ValueError("base trace must be non-empty")
    rng = np.random.default_rng(seed)
    n = len(base_src)
    if start_index is None:
        start_index = int(rng.integers(1, max(2, n // 2)))
    if not 0 <= start_index <= n:
        raise ValueError(f"start_index out of range: {start_index}")

    shift = 32 - spec.subnet_bits
    # choose distinct random subnets (the paper picks random bits; we
    # deduplicate so exactly num_subnets distinct attackers exist)
    chosen = rng.choice(1 << spec.subnet_bits, size=spec.num_subnets, replace=False)
    subnets = [make_prefix(int(v) << shift, spec.subnet_bits) for v in chosen]
    subnet_bases = [p[0] for p in subnets]
    host_mask = (1 << shift) - 1

    out_src: List[int] = list(base_src[:start_index])
    out_dst: List[int] = list(base_dst[:start_index]) if base_dst is not None else [0] * start_index
    flags: List[bool] = [False] * start_index

    pos = start_index
    while pos < n:
        if rng.random() < spec.share:
            subnet = subnet_bases[int(rng.integers(0, spec.num_subnets))]
            host = int(rng.integers(0, host_mask + 1))
            out_src.append(subnet | host)
            out_dst.append(0 if base_dst is None else int(rng.integers(0, 1 << 32)))
            flags.append(True)
        else:
            out_src.append(base_src[pos])
            out_dst.append(base_dst[pos] if base_dst is not None else 0)
            flags.append(False)
            pos += 1

    return FloodTrace(
        src=out_src,
        dst=out_dst,
        is_attack=flags,
        subnets=subnets,
        start_index=start_index,
        spec=spec,
    )
