"""Packet and flow-key models.

The algorithms operate on plain hashable keys for speed: 1-D experiments
use the 32-bit source address (an ``int``), 2-D experiments use the
``(src, dst)`` pair (a tuple).  :class:`Packet` is the richer record used
by the load-balancer simulation and trace files, with cheap conversion to
those hot-path keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..hierarchy.prefix import int_to_ip

__all__ = ["Packet", "flow_key_1d", "flow_key_2d"]


@dataclass(frozen=True)
class Packet:
    """A network packet as seen by a measurement point.

    Attributes
    ----------
    src / dst:
        32-bit addresses as integers.
    size:
        Payload size in bytes (used by byte-volume extensions; the paper's
        experiments count packets, so it defaults to 1).
    is_attack:
        Ground-truth flood label attached by the trace generator (used only
        for evaluation, never by the algorithms).
    """

    src: int
    dst: int = 0
    size: int = 1
    is_attack: bool = False

    @property
    def key_1d(self) -> int:
        """The 1-D flow key (source address)."""
        return self.src

    @property
    def key_2d(self) -> Tuple[int, int]:
        """The 2-D flow key (source, destination)."""
        return (self.src, self.dst)

    def __str__(self) -> str:
        return f"{int_to_ip(self.src)} -> {int_to_ip(self.dst)}"


def flow_key_1d(src: int, dst: int = 0) -> int:
    """Hot-path 1-D key from raw address integers."""
    return src


def flow_key_2d(src: int, dst: int) -> Tuple[int, int]:
    """Hot-path 2-D key from raw address integers."""
    return (src, dst)
