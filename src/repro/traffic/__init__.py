"""Traffic substrate: synthetic traces, HTTP generation, flood injection."""

from .flood import FloodSpec, FloodTrace, inject_flood
from .http import HttpRequest, HttpTrafficGenerator
from .packet import Packet, flow_key_1d, flow_key_2d
from .synth import (
    BACKBONE,
    DATACENTER,
    EDGE,
    PROFILES,
    Trace,
    TraceProfile,
    generate_trace,
)
from .trace_io import export_csv, import_csv, load_trace, save_trace

__all__ = [
    "FloodSpec",
    "FloodTrace",
    "inject_flood",
    "HttpRequest",
    "HttpTrafficGenerator",
    "Packet",
    "flow_key_1d",
    "flow_key_2d",
    "Trace",
    "TraceProfile",
    "generate_trace",
    "BACKBONE",
    "DATACENTER",
    "EDGE",
    "PROFILES",
    "save_trace",
    "load_trace",
    "export_csv",
    "import_csv",
]
