"""Stateful HTTP request generation (stand-in for the paper's traffic tool).

Section 6.3 describes a generator built on NFQUEUE that initiates and
maintains stateful HTTP GET/POST requests from many source IPs toward the
load balancers (up to 30k requests/s from one commodity machine).  This
module reproduces the *behavioural* properties that matter to the
measurement system:

* requests arrive from a large, skewed pool of client addresses;
* clients hold sessions that issue several requests before closing
  (keep-alive off in the paper's tool, so sessions are short);
* GET/POST mix and per-request paths are realistic enough for the
  load-balancer's routing and ACL layers to exercise their logic.

The output is a deterministic (seeded) iterator of :class:`HttpRequest`
records consumed by :mod:`repro.loadbalancer` and the flood example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from .synth import _flow_addresses, _zipf_weights

__all__ = ["HttpRequest", "HttpTrafficGenerator"]

_METHODS = ("GET", "POST")
_PATHS = (
    "/",
    "/index.html",
    "/api/v1/items",
    "/api/v1/login",
    "/static/app.js",
    "/static/style.css",
    "/images/logo.png",
    "/search",
)


@dataclass(frozen=True)
class HttpRequest:
    """One HTTP request as seen by a load-balancer frontend."""

    src: int
    method: str
    path: str
    session: int
    seq: int  # position within the emitting session

    @property
    def key_1d(self) -> int:
        """The 1-D measurement key (client source address)."""
        return self.src


class HttpTrafficGenerator:
    """Seeded generator of stateful HTTP request streams.

    Parameters
    ----------
    clients:
        Size of the client address pool.
    session_length_mean:
        Mean requests per session (geometric); the paper's tool works
        without HTTP keep-alive, so sessions are short bursts.
    get_fraction:
        Fraction of GET (vs POST) requests.
    octet_alpha:
        Subnet skew of the client pool (see :mod:`repro.traffic.synth`).
    seed:
        RNG seed; same seed ⇒ identical stream.

    Examples
    --------
    >>> gen = HttpTrafficGenerator(clients=100, seed=7)
    >>> reqs = gen.take(5)
    >>> len(reqs), {r.method for r in reqs} <= {"GET", "POST"}
    (5, True)
    """

    def __init__(
        self,
        clients: int = 10_000,
        session_length_mean: float = 4.0,
        get_fraction: float = 0.8,
        client_alpha: float = 1.1,
        octet_alpha: float = 0.7,
        seed: Optional[int] = None,
    ) -> None:
        if clients <= 0:
            raise ValueError(f"clients must be positive, got {clients}")
        if session_length_mean < 1.0:
            raise ValueError(
                f"session_length_mean must be >= 1, got {session_length_mean}"
            )
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError(f"get_fraction must be in [0, 1], got {get_fraction}")
        self._rng = np.random.default_rng(seed)
        self._addresses = _flow_addresses(self._rng, clients, octet_alpha)
        self._client_probs = _zipf_weights(clients, client_alpha)
        self._client_cdf = np.cumsum(self._client_probs)
        self._client_cdf[-1] = 1.0
        self._session_p = 1.0 / session_length_mean
        self.get_fraction = float(get_fraction)
        self._next_session = 0

    def _new_session_client(self) -> int:
        u = self._rng.random()
        idx = int(np.searchsorted(self._client_cdf, u, side="right"))
        return int(self._addresses[idx])

    def stream(self) -> Iterator[HttpRequest]:
        """Infinite request stream: interleaved short-lived sessions."""
        rng = self._rng
        while True:
            src = self._new_session_client()
            session = self._next_session
            self._next_session += 1
            # geometric session length (>= 1) with the configured mean
            length = int(rng.geometric(self._session_p))
            for seq in range(length):
                method = "GET" if rng.random() < self.get_fraction else "POST"
                path = _PATHS[int(rng.integers(0, len(_PATHS)))]
                yield HttpRequest(
                    src=src, method=method, path=path, session=session, seq=seq
                )

    def take(self, count: int) -> List[HttpRequest]:
        """Materialize the next ``count`` requests."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        out: List[HttpRequest] = []
        stream = self.stream()
        for _ in range(count):
            out.append(next(stream))
        return out
