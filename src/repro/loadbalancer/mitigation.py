"""Threshold-based attack mitigation (the paper's proof-of-concept system).

Section 6.3: "the HHH output can be used as a simple threshold-based attack
mitigation application where a subnet is rate-limited if its window
frequency is above the threshold."  :class:`MitigationSystem` wires the
full loop:

  HTTP requests → load balancers (measurement taps) → measurement points
  → reports → network-wide controller (D-H-Memento or Aggregation)
  → HHH output above ``theta`` → ACL rules pushed to every frontend.

Detection bookkeeping (first detection time per subnet, attack requests
that slipped through before their subnet was blocked) feeds the Figure 10
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..netwide.simulation import NetwideSystem
from .acl import AclAction
from .haproxy import LoadBalancer

__all__ = ["MitigationSystem", "MitigationReport"]

Prefix1D = Tuple[int, int]


@dataclass
class MitigationReport:
    """Summary of a mitigation run."""

    detections: Dict[Prefix1D, int]
    blocked_requests: int
    leaked_attack_requests: int
    total_attack_requests: int
    total_requests: int

    @property
    def leak_fraction(self) -> float:
        """Fraction of attack requests that were not blocked."""
        if self.total_attack_requests == 0:
            return 0.0
        return self.leaked_attack_requests / self.total_attack_requests


class MitigationSystem:
    """Controller-driven subnet mitigation across a fleet of frontends.

    Parameters
    ----------
    system:
        The network-wide measurement deployment (method, budget, window).
    load_balancers:
        The frontends to protect; detected subnets get rules pushed into
        every frontend's ACL.
    theta:
        The window-frequency threshold above which a subnet is mitigated.
    action:
        ACL action for detected subnets (the paper uses rate-limiting or
        deny; default deny).
    rate:
        Admitted fraction when ``action`` is RATE_LIMIT.
    subnet_bits:
        Granularity at which mitigation rules are installed (the flood
        experiment attacks with /8 subnets).
    check_interval:
        How often (in requests) the controller recomputes its HHH output —
        the paper notes HHH queries are not constant-time, so production
        systems poll.
    """

    def __init__(
        self,
        system: NetwideSystem,
        load_balancers: Sequence[LoadBalancer],
        theta: float,
        action: AclAction = AclAction.DENY,
        rate: float = 0.01,
        subnet_bits: int = 8,
        check_interval: int = 1000,
    ) -> None:
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        if check_interval <= 0:
            raise ValueError(
                f"check_interval must be positive, got {check_interval}"
            )
        if system.config.hierarchy is None:
            raise ValueError(
                "MitigationSystem needs a hierarchy-enabled NetwideSystem "
                "(subnet detection queries prefix frequencies)"
            )
        self.system = system
        self.load_balancers = list(load_balancers)
        if len(self.load_balancers) != len(system.points):
            raise ValueError(
                "need exactly one load balancer per measurement point"
            )
        self.theta = float(theta)
        self.action = action
        self.rate = float(rate)
        self.subnet_bits = int(subnet_bits)
        self.check_interval = int(check_interval)

        # wire each frontend's tap to its measurement point
        for idx, balancer in enumerate(self.load_balancers):
            balancer.tap = self._make_tap(idx)

        self.detections: Dict[Prefix1D, int] = {}
        self.requests_processed = 0
        self.blocked_requests = 0
        self.leaked_attack_requests = 0
        self.total_attack_requests = 0

    def _make_tap(self, point_index: int):
        def tap(src: int) -> None:
            self.system.offer(point_index, src)

        return tap

    # ------------------------------------------------------------------
    def process(self, src: int, lb_index: int, is_attack: bool = False) -> bool:
        """Feed one request through a frontend; True when it was blocked."""
        self.requests_processed += 1
        if is_attack:
            self.total_attack_requests += 1
        response = self.load_balancers[lb_index].handle(src)
        blocked = not response.ok
        if blocked:
            self.blocked_requests += 1
        elif is_attack:
            self.leaked_attack_requests += 1
        if self.requests_processed % self.check_interval == 0:
            self._refresh_rules()
        return blocked

    def _refresh_rules(self) -> None:
        """Re-evaluate subnet frequencies and push new mitigation rules.

        Per Section 6.3 the mitigation rule is threshold-based on the
        subnet's *window frequency* estimate, not on the conditioned HHH
        set (whose coverage slack would over-block at small scales).
        """
        detected = self.system.detected_subnets(
            self.theta, subnet_bits=self.subnet_bits
        )
        new = detected - self.detections.keys()
        for prefix in new:
            self.detections[prefix] = self.requests_processed
            for balancer in self.load_balancers:
                balancer.acl.add_rule(prefix, self.action, rate=self.rate)

    def process_many(
        self,
        sources: Sequence[int],
        attack_flags: Optional[Sequence[bool]] = None,
    ) -> int:
        """Feed a batch of requests round-robin; returns how many were
        blocked.

        Equivalent to calling :meth:`process` per request with
        ``lb_index = i % len(load_balancers)``, but the accounting runs on
        locals and only syncs back to the instance at rule-refresh
        boundaries (where :meth:`_refresh_rules` reads the counters) and
        at the end of the batch.
        """
        n = len(sources)
        flags = attack_flags if attack_flags is not None else None
        if flags is not None and len(flags) != n:
            raise ValueError("attack_flags must match sources length")
        balancers = self.load_balancers
        count = len(balancers)
        interval = self.check_interval
        start_blocked = self.blocked_requests
        processed = self.requests_processed
        blocked_count = self.blocked_requests
        leaked = self.leaked_attack_requests
        attacks = self.total_attack_requests
        for i in range(n):
            is_attack = flags is not None and flags[i]
            processed += 1
            if is_attack:
                attacks += 1
            response = balancers[i % count].handle(sources[i])
            if not response.ok:
                blocked_count += 1
            elif is_attack:
                leaked += 1
            if processed % interval == 0:
                self.requests_processed = processed
                self.blocked_requests = blocked_count
                self.leaked_attack_requests = leaked
                self.total_attack_requests = attacks
                self._refresh_rules()
        self.requests_processed = processed
        self.blocked_requests = blocked_count
        self.leaked_attack_requests = leaked
        self.total_attack_requests = attacks
        return blocked_count - start_blocked

    # ------------------------------------------------------------------
    def run(
        self,
        sources: Sequence[int],
        attack_flags: Optional[Sequence[bool]] = None,
        assignment: str = "round_robin",
    ) -> MitigationReport:
        """Replay a request stream across the fleet and report outcomes."""
        if attack_flags is not None and len(attack_flags) != len(sources):
            raise ValueError("attack_flags must match sources length")
        if assignment != "round_robin":
            raise ValueError(f"unsupported assignment {assignment!r}")
        self.process_many(sources, attack_flags)
        return MitigationReport(
            detections=dict(self.detections),
            blocked_requests=self.blocked_requests,
            leaked_attack_requests=self.leaked_attack_requests,
            total_attack_requests=self.total_attack_requests,
            total_requests=self.requests_processed,
        )
