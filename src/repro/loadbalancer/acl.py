"""Subnet Access Control Lists (the paper's HAProxy ACL extension).

Section 6.3: "we leveraged and extended HAProxy's Access Control List
capabilities, to allow the updates of our algorithms with new arriving data
as well as to perform mitigation (i.e., Deny or Tarpit) when an attacker is
identified" — with the extension's headline capability being rules over
*entire subnets* rather than individual flows.

:class:`AccessControlList` stores rules keyed by 1-D prefixes (any byte
granularity) and resolves a source address via longest-prefix match.
``RATE_LIMIT`` rules admit a configured fraction of matching requests using
a deterministic fractional accumulator (a token bucket with unit depth), so
behaviour is reproducible under seeding-free replay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..hierarchy.prefix import MASKS, prefix_str

__all__ = ["AclAction", "AclRule", "AclDecision", "AccessControlList"]

Prefix1D = Tuple[int, int]

#: Longest-prefix-match probe order (most specific first, excluding /0).
_MATCH_LENGTHS = (32, 24, 16, 8)


class AclAction(enum.Enum):
    """What to do with a matching request."""

    ALLOW = "allow"
    DENY = "deny"
    TARPIT = "tarpit"
    RATE_LIMIT = "rate-limit"


@dataclass
class AclRule:
    """One ACL entry: a subnet, an action, and an optional admit rate."""

    prefix: Prefix1D
    action: AclAction
    rate: float = 0.0  # admitted fraction for RATE_LIMIT rules
    hits: int = 0
    _accumulator: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.action is AclAction.RATE_LIMIT and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def admit(self) -> bool:
        """RATE_LIMIT admission: deterministically pass ``rate`` of hits."""
        self._accumulator += self.rate
        if self._accumulator >= 1.0:
            self._accumulator -= 1.0
            return True
        return False

    def describe(self) -> str:
        """Human-readable rule line (HAProxy-config flavoured)."""
        base = f"acl {self.action.value} src {prefix_str(self.prefix)}"
        if self.action is AclAction.RATE_LIMIT:
            base += f" rate {self.rate:.3f}"
        return base


@dataclass(frozen=True)
class AclDecision:
    """Result of evaluating one request against the ACL."""

    action: AclAction
    rule: Optional[AclRule] = None


_ALLOW = AclDecision(AclAction.ALLOW, None)


class AccessControlList:
    """Longest-prefix-match rule table over source subnets.

    Examples
    --------
    >>> from repro.hierarchy.prefix import parse_prefix, ip_to_int
    >>> acl = AccessControlList()
    >>> rule = acl.add_rule(parse_prefix("10.2.*"), AclAction.DENY)
    >>> acl.evaluate(ip_to_int("10.2.3.4")).action
    <AclAction.DENY: 'deny'>
    >>> acl.evaluate(ip_to_int("10.9.3.4")).action
    <AclAction.ALLOW: 'allow'>
    """

    def __init__(self) -> None:
        self._rules: Dict[Prefix1D, AclRule] = {}

    def add_rule(
        self, prefix: Prefix1D, action: AclAction, rate: float = 0.0
    ) -> AclRule:
        """Install (or replace) the rule for ``prefix``; returns it."""
        if prefix[1] not in MASKS:
            raise ValueError(f"invalid prefix length: {prefix[1]}")
        canonical = (prefix[0] & MASKS[prefix[1]], prefix[1])
        rule = AclRule(prefix=canonical, action=action, rate=rate)
        self._rules[canonical] = rule
        return rule

    def remove_rule(self, prefix: Prefix1D) -> bool:
        """Remove the rule for ``prefix``; True when one existed."""
        return self._rules.pop(prefix, None) is not None

    def clear(self) -> None:
        """Drop every rule."""
        self._rules.clear()

    def evaluate(self, src: int) -> AclDecision:
        """Longest-prefix-match decision for a source address."""
        rules = self._rules
        if not rules:
            return _ALLOW
        for length in _MATCH_LENGTHS:
            rule = rules.get((src & MASKS[length], length))
            if rule is not None:
                rule.hits += 1
                if rule.action is AclAction.RATE_LIMIT and rule.admit():
                    return AclDecision(AclAction.ALLOW, rule)
                return AclDecision(rule.action, rule)
        root = rules.get((0, 0))
        if root is not None:
            root.hits += 1
            return AclDecision(root.action, root)
        return _ALLOW

    def rules(self) -> Iterable[AclRule]:
        """All installed rules."""
        return tuple(self._rules.values())

    def has_rule(self, prefix: Prefix1D) -> bool:
        """Whether an exact rule for ``prefix`` exists."""
        return prefix in self._rules

    def __len__(self) -> int:
        return len(self._rules)
