"""Backend servers and dispatch policies (the testbed's Apache instances).

The paper's testbed runs Apache containers behind ten HAProxy frontends.
For the reproduction the backends model what matters to the flood
experiment: per-server load accounting (so an unmitigated flood visibly
concentrates load) and the standard dispatch policies load balancers use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Response", "Backend", "BackendPool", "DispatchPolicy"]


class DispatchPolicy(enum.Enum):
    """How a pool picks the backend for the next request."""

    ROUND_ROBIN = "round-robin"
    LEAST_CONNECTIONS = "least-connections"


@dataclass(frozen=True)
class Response:
    """Outcome of a request after load-balancer processing."""

    status: int
    backend_id: Optional[int] = None
    tarpitted: bool = False

    @property
    def ok(self) -> bool:
        """True for 2xx responses."""
        return 200 <= self.status < 300


class Backend:
    """One backend server with bounded concurrency.

    ``capacity`` bounds in-flight requests; an overloaded backend answers
    503, which is how a successful flood manifests in the simulation.
    Requests complete after ``service_time`` ticks (driven by the pool's
    clock).
    """

    def __init__(self, backend_id: int, capacity: int = 1000, service_time: int = 10) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if service_time <= 0:
            raise ValueError(f"service_time must be positive, got {service_time}")
        self.backend_id = int(backend_id)
        self.capacity = int(capacity)
        self.service_time = int(service_time)
        self.active = 0
        self.served = 0
        self.rejected = 0
        self._completions: List[int] = []  # completion ticks (heapless; small)

    def drain(self, now: int) -> None:
        """Complete requests whose service time has elapsed."""
        if not self._completions:
            return
        remaining = [t for t in self._completions if t > now]
        finished = len(self._completions) - len(remaining)
        if finished:
            self.active -= finished
            self._completions = remaining

    def offer(self, now: int) -> Response:
        """Admit one request if capacity allows."""
        self.drain(now)
        if self.active >= self.capacity:
            self.rejected += 1
            return Response(status=503, backend_id=self.backend_id)
        self.active += 1
        self.served += 1
        self._completions.append(now + self.service_time)
        return Response(status=200, backend_id=self.backend_id)

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently in use."""
        return self.active / self.capacity


class BackendPool:
    """A set of backends plus a dispatch policy."""

    def __init__(
        self,
        backends: List[Backend],
        policy: DispatchPolicy = DispatchPolicy.ROUND_ROBIN,
    ) -> None:
        if not backends:
            raise ValueError("pool needs at least one backend")
        self.backends = list(backends)
        self.policy = policy
        self._next = 0

    def dispatch(self, now: int) -> Response:
        """Route one request according to the policy."""
        if self.policy is DispatchPolicy.ROUND_ROBIN:
            backend = self.backends[self._next]
            self._next = (self._next + 1) % len(self.backends)
        else:
            for candidate in self.backends:
                candidate.drain(now)
            backend = min(self.backends, key=lambda srv: srv.active)
        return backend.offer(now)

    @property
    def total_served(self) -> int:
        """Requests served across all backends."""
        return sum(b.served for b in self.backends)

    @property
    def total_rejected(self) -> int:
        """Requests rejected (503) across all backends."""
        return sum(b.rejected for b in self.backends)
