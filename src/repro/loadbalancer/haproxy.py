"""HAProxy-like load-balancer frontends with measurement taps.

Each :class:`LoadBalancer` mirrors the role of one HAProxy instance in the
paper's testbed (Section 6.3): it receives HTTP requests, evaluates the
subnet ACL (deny / tarpit / rate-limit — the paper's extension), dispatches
admitted requests to a backend pool, and feeds every arriving request into
its *measurement tap* — the network-wide measurement point that reports to
the centralized controller.

The tap observes requests **before** mitigation: rate-limited attackers
must remain visible to the measurement plane, otherwise the controller
would immediately forget the very subnets it is limiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..traffic.http import HttpRequest
from .acl import AccessControlList, AclAction
from .backend import BackendPool, Response

__all__ = ["LoadBalancer", "LbStats"]

#: HTTP status used for tarpitted connections (HAProxy answers 500 after
#: holding the connection; we keep the hold as a flag on the response).
_TARPIT_STATUS = 500
_DENY_STATUS = 403


@dataclass
class LbStats:
    """Per-frontend counters (mirrors ``haproxy -sf`` stats fields we use)."""

    received: int = 0
    allowed: int = 0
    denied: int = 0
    tarpitted: int = 0
    rate_limited: int = 0

    @property
    def mitigated(self) -> int:
        """Requests stopped by any ACL action."""
        return self.denied + self.tarpitted + self.rate_limited


class LoadBalancer:
    """One frontend: ACL + backend pool + measurement tap.

    Parameters
    ----------
    name:
        Frontend identifier (e.g. ``"lb-3"``).
    pool:
        Backend pool for admitted requests.
    acl:
        The subnet ACL (shared or per-frontend; the mitigation controller
        pushes rules into it).
    tap:
        Called with the request's measurement key (source address) for
        every arriving request; typically ``measurement_point.observe``
        composed with the controller delivery (see
        :class:`repro.loadbalancer.mitigation.MitigationSystem`).
    """

    def __init__(
        self,
        name: str,
        pool: BackendPool,
        acl: Optional[AccessControlList] = None,
        tap: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.name = name
        self.pool = pool
        self.acl = acl if acl is not None else AccessControlList()
        self.tap = tap
        self.stats = LbStats()
        self._now = 0

    def handle(self, request: Union[HttpRequest, int]) -> Response:
        """Process one request end-to-end and return the response.

        Accepts either a full :class:`~repro.traffic.http.HttpRequest` or a
        bare source address (the flood benches drive frontends with raw
        keys for speed).
        """
        self._now += 1
        src = request.src if isinstance(request, HttpRequest) else int(request)
        self.stats.received += 1

        if self.tap is not None:
            self.tap(src)

        decision = self.acl.evaluate(src)
        action = decision.action
        if action is AclAction.DENY:
            self.stats.denied += 1
            return Response(status=_DENY_STATUS)
        if action is AclAction.TARPIT:
            self.stats.tarpitted += 1
            return Response(status=_TARPIT_STATUS, tarpitted=True)
        if action is AclAction.RATE_LIMIT:
            # evaluate() already consumed a token and returned ALLOW when
            # the request is admitted, so reaching here means "drop".
            self.stats.rate_limited += 1
            return Response(status=_DENY_STATUS)
        self.stats.allowed += 1
        return self.pool.dispatch(self._now)

    @property
    def now(self) -> int:
        """Requests processed by this frontend so far."""
        return self._now
