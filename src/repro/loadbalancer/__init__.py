"""HAProxy-like load balancers, subnet ACLs, and the mitigation loop."""

from .acl import AccessControlList, AclAction, AclDecision, AclRule
from .backend import Backend, BackendPool, DispatchPolicy, Response
from .haproxy import LbStats, LoadBalancer
from .mitigation import MitigationReport, MitigationSystem

__all__ = [
    "AccessControlList",
    "AclAction",
    "AclDecision",
    "AclRule",
    "Backend",
    "BackendPool",
    "DispatchPolicy",
    "Response",
    "LoadBalancer",
    "LbStats",
    "MitigationSystem",
    "MitigationReport",
]
