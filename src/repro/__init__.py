"""repro — a reproduction of *Memento: Making Sliding Windows Efficient for
Heavy Hitters* (Ben Basat, Einziger, Keslassy, Orda, Vargaftik, Waisbard —
CoNEXT 2018).

The package implements the full Memento family plus every substrate the
paper depends on:

* single-device algorithms — :class:`Memento` (HH), :class:`HMemento`
  (HHH), with :class:`WCSS`, :class:`SpaceSaving`, :class:`MST`,
  :class:`WindowBaseline` and :class:`RHHH` as the paper's baselines;
* prefix hierarchies — :data:`SRC_HIERARCHY` (1-D, H=5) and
  :data:`SRC_DST_HIERARCHY` (2-D, H=25);
* network-wide measurement — measurement points, Sample/Batch/Aggregation
  transports, D-Memento / D-H-Memento controllers, and the Theorem 5.5
  budget optimizer (:class:`BudgetModel`);
* an HAProxy-like load-balancer fleet with subnet ACLs and the
  threshold-based mitigation loop of Section 6.3;
* synthetic traffic (trace profiles, HTTP generator, flood injection) and
  the evaluation metrics used by the paper's figures.

**The front door is the engine facade**: declare a deployment as a
:class:`SketchSpec` (a frozen, JSON-round-trippable configuration tree —
algorithm family, window, sharding, pipelining) and
:func:`build_engine` composes the stack behind one stable surface.

Quickstart::

    from repro import build_engine

    with build_engine({
        "algorithm": {"family": "memento", "window": 100_000,
                      "counters": 512, "tau": 1 / 16, "seed": 1},
    }) as engine:
        engine.update_many(stream)          # or engine.update(packet)
        heavy = engine.heavy_hitters(theta=0.01)
        top = engine.top_k(10)

The same spec scales out declaratively — add ``"sharding": {"shards": 8,
"executor": "persistent"}`` and ``"pipeline": {}`` sections, or load a
checked-in deployment with ``build_engine("specs/....json")`` — and new
algorithm families join via :func:`register_algorithm` without touching
the spec or the facade.  Direct constructors (``Memento(...)`` etc.)
remain available and are what the registry factories call; engine-built
state is byte-identical to hand-wired construction under a fixed seed.

See ``examples/`` for end-to-end scenarios (``examples/engine_spec.py``
walks the spec layer), ``specs/`` for checked-in deployment files, and
``benchmarks/`` for the per-figure reproduction harness.
"""

from .analysis.change_detection import ChangeEvent, HeavyChangeDetector
from .analysis.detection import (
    analytic_detection_time,
    detection_curve,
    simulate_detection_time,
)
from .analysis.error_model import (
    hmemento_min_tau,
    hmemento_sampling_error,
    memento_min_tau,
    memento_sampling_error,
    z_quantile,
)
from .analysis.metrics import (
    RunningRMSE,
    SetQuality,
    hhh_on_arrival_rmse,
    on_arrival_rmse,
    precision_recall,
    throughput,
)
from .core.api import (
    MergeableSketch,
    QueryableSketch,
    SlidingSketch,
    WindowedEntries,
    WindowedSketch,
)
from .engine import (
    AlgorithmSpec,
    HeavyHitterEngine,
    HierarchySpec,
    PipelineSpec,
    ServiceSpec,
    ShardingSpec,
    SketchSpec,
    build_engine,
    register_algorithm,
    registered_algorithms,
)
from .core.exact import ExactIntervalCounter, ExactWindowCounter, ExactWindowHHH
from .core.h_memento import HMemento
from .core.interval import IntervalScheme
from .core.memento import WCSS, Memento
from .core.merge import (
    MergedWindowSketch,
    merge_entry_sets,
    merge_h_memento,
    merge_memento,
    merge_mst,
    merge_space_saving,
    merge_windowed_entry_sets,
)
from .core.mst import MST, WindowBaseline
from .core.rhhh import RHHH
from .core.sampling import (
    BernoulliSampler,
    FixedSampler,
    GeometricSampler,
    TableSampler,
    make_sampler,
)
from .core.space_saving import SpaceSaving
from .core.volumetric import VolumetricMemento, VolumetricSpaceSaving
from .hierarchy.domain import (
    SRC_DST_HIERARCHY,
    SRC_HIERARCHY,
    Hierarchy,
    Hierarchy1D,
    Hierarchy2D,
)
from .hierarchy.hhh_output import compute_hhh
from .hierarchy.prefix import (
    int_to_ip,
    ip_to_int,
    make_prefix,
    parse_prefix,
    prefix_str,
)
from .netwide.budget import BudgetModel, figure4_series
from .netwide.controller import AggregationController, SketchController
from .netwide.measurement_point import AggregatingPoint, SamplingPoint
from .netwide.simulation import NetwideConfig, NetwideSystem, run_error_experiment
from .service import (
    AsyncServiceClient,
    CheckpointStore,
    IngestServer,
    ServiceClient,
    ServiceDaemon,
)
from .sharding import (
    PersistentProcessExecutor,
    PipelineConfig,
    ProcessExecutor,
    SerialExecutor,
    ShardedSketch,
    ThreadExecutor,
    make_executor,
    shard_index,
)
from .traffic.flood import FloodSpec, FloodTrace, inject_flood
from .traffic.http import HttpRequest, HttpTrafficGenerator
from .traffic.packet import Packet
from .traffic.synth import (
    BACKBONE,
    DATACENTER,
    EDGE,
    PROFILES,
    Trace,
    TraceProfile,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    # core algorithms
    "Memento",
    "WCSS",
    "HMemento",
    "SpaceSaving",
    "MST",
    "WindowBaseline",
    "RHHH",
    "IntervalScheme",
    "merge_space_saving",
    "merge_entry_sets",
    "merge_mst",
    "merge_windowed_entry_sets",
    "merge_memento",
    "merge_h_memento",
    "MergedWindowSketch",
    # protocols
    "SlidingSketch",
    "MergeableSketch",
    "QueryableSketch",
    "WindowedSketch",
    "WindowedEntries",
    # engine facade
    "HeavyHitterEngine",
    "build_engine",
    "SketchSpec",
    "AlgorithmSpec",
    "HierarchySpec",
    "ShardingSpec",
    "PipelineSpec",
    "ServiceSpec",
    "register_algorithm",
    "registered_algorithms",
    # service
    "IngestServer",
    "ServiceDaemon",
    "ServiceClient",
    "AsyncServiceClient",
    "CheckpointStore",
    # sharding
    "ShardedSketch",
    "shard_index",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PersistentProcessExecutor",
    "make_executor",
    "PipelineConfig",
    "VolumetricMemento",
    "VolumetricSpaceSaving",
    "ChangeEvent",
    "HeavyChangeDetector",
    "ExactWindowCounter",
    "ExactIntervalCounter",
    "ExactWindowHHH",
    # sampling
    "BernoulliSampler",
    "TableSampler",
    "GeometricSampler",
    "FixedSampler",
    "make_sampler",
    # hierarchies
    "Hierarchy",
    "Hierarchy1D",
    "Hierarchy2D",
    "SRC_HIERARCHY",
    "SRC_DST_HIERARCHY",
    "compute_hhh",
    "ip_to_int",
    "int_to_ip",
    "make_prefix",
    "parse_prefix",
    "prefix_str",
    # network-wide
    "BudgetModel",
    "figure4_series",
    "SamplingPoint",
    "AggregatingPoint",
    "SketchController",
    "AggregationController",
    "NetwideConfig",
    "NetwideSystem",
    "run_error_experiment",
    # traffic
    "Packet",
    "Trace",
    "TraceProfile",
    "generate_trace",
    "BACKBONE",
    "DATACENTER",
    "EDGE",
    "PROFILES",
    "FloodSpec",
    "FloodTrace",
    "inject_flood",
    "HttpRequest",
    "HttpTrafficGenerator",
    # analysis
    "analytic_detection_time",
    "simulate_detection_time",
    "detection_curve",
    "z_quantile",
    "memento_min_tau",
    "memento_sampling_error",
    "hmemento_min_tau",
    "hmemento_sampling_error",
    "RunningRMSE",
    "SetQuality",
    "on_arrival_rmse",
    "hhh_on_arrival_rmse",
    "precision_recall",
    "throughput",
    "__version__",
]
